"""The ezBFT client: an active participant in consensus.

Paper steps 1, 4.1-4.4 and 6.2: the client sends its request to one
(nearest) replica, collects SPECREPLYs, certifies the fast path with 3f+1
matching replies (COMMITFAST), falls back to the slow path by combining
the designated slow quorum's dependency sets (COMMIT), detects
command-leader equivocation (POM), and re-broadcasts timed-out requests
to trigger recovery.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Optional, Tuple

from repro.cluster.node import NodeContext, Timer
from repro.config import ProtocolConfig
from repro.crypto.keys import KeyPair, KeyRegistry
from repro.errors import ProtocolError
from repro.messages.base import SignedPayload
from repro.messages.batching import BatchRequest
from repro.messages.ezbft import (
    Commit,
    CommitFast,
    CommitReply,
    ProofOfMisbehavior,
    Request,
    SpecReply,
)
from repro.statemachine.base import Command
from repro.trace.context import trace_id_for
from repro.trace.span import SPAN_CLIENT_REQUEST, SPAN_CLIENT_SLOW_PATH
from repro.trace.tracer import NULL_TRACER
from repro.types import InstanceID

#: Called on delivery: (command, result, latency_ms, path) where path is
#: "fast" or "slow".
DeliveryCallback = Callable[[Command, Any, float, str], None]


@dataclass
class _Pending:
    command: Command
    target: str
    start_time: float
    #: replica -> (reply, signed envelope); reset on retry.
    spec_replies: Dict[str, Tuple[SpecReply, SignedPayload]] = \
        field(default_factory=dict)
    commit_replies: Dict[str, CommitReply] = field(default_factory=dict)
    phase: str = "spec"  # spec -> slow -> done
    slow_timer: Optional[Timer] = None
    retry_timer: Optional[Timer] = None
    retries: int = 0
    pom_sent: bool = False
    #: Root ``client.request`` span (None when tracing is off or the
    #: trace was not sampled); every message this request emits is sent
    #: with this span's context current so it rides the wire.
    span: Optional[Any] = None

    def cancel_timers(self) -> None:
        for timer in (self.slow_timer, self.retry_timer):
            if timer is not None:
                timer.cancel()


class EzBFTClient:
    """One ezBFT client node."""

    #: Tracing seam (see :mod:`repro.trace`): the no-op singleton by
    #: default; the scenario runner / serve session swap in a live
    #: tracer.  The client owns each request's root span.
    tracer = NULL_TRACER

    def __init__(self, client_id: str, config: ProtocolConfig,
                 ctx: NodeContext, keypair: KeyPair,
                 registry: KeyRegistry, target_replica: str,
                 on_delivery: Optional[DeliveryCallback] = None) -> None:
        if target_replica not in config.replica_ids:
            raise ProtocolError(
                f"target {target_replica!r} not a replica")
        self.client_id = client_id
        self.config = config
        self.ctx = ctx
        self.keypair = keypair
        self.registry = registry
        self.target_replica = target_replica
        self.on_delivery = on_delivery
        self._next_timestamp = 1
        self._pending: Dict[Tuple[str, int], _Pending] = {}
        self.stats = {
            "submitted": 0,
            "batches_submitted": 0,
            "delivered_fast": 0,
            "delivered_slow": 0,
            "retries": 0,
            "poms_sent": 0,
        }

    # ------------------------------------------------------------------
    # Submission
    # ------------------------------------------------------------------
    def next_command(self, op: str, key: str = "",
                     value: Any = None) -> Command:
        """Build a command with the next exactly-once timestamp."""
        command = Command(client_id=self.client_id,
                          timestamp=self._next_timestamp,
                          op=op, key=key, value=value)
        self._next_timestamp += 1
        return command

    def submit(self, command: Command) -> None:
        """Step 1: send the signed request to the target replica."""
        pending = self._register_pending(command)
        request = Request(command=command)
        envelope = SignedPayload.create(request, self.keypair)
        span = pending.span
        if span is None:
            self.ctx.send(self.target_replica, envelope)
            return
        tracer = self.tracer
        prev = tracer.set_current(span.context())
        try:
            self.ctx.send(self.target_replica, envelope)
        finally:
            tracer.set_current(prev)

    def _register_pending(self, command: Command) -> _Pending:
        """Record a command as in flight and arm its timers (shared by
        the singleton and batched submission paths)."""
        if command.client_id != self.client_id:
            raise ProtocolError("command does not belong to this client")
        pending = _Pending(command=command, target=self.target_replica,
                           start_time=self.ctx.now)
        self._pending[command.ident] = pending
        self.stats["submitted"] += 1
        pending.slow_timer = self.ctx.set_timer(
            self.config.slow_path_timeout, self._on_slow_timeout,
            command.ident)
        pending.retry_timer = self.ctx.set_timer(
            self.config.retry_timeout, self._on_retry_timeout,
            command.ident)
        tracer = self.tracer
        if tracer.enabled:
            # Root of the request's trace; sampling is decided here,
            # on the deterministic command ident, so every node keeps
            # or drops the same request.
            pending.span = tracer.start_span(
                SPAN_CLIENT_REQUEST, self.client_id,
                trace_id=trace_id_for(command.client_id,
                                      command.timestamp))
        return pending

    def submit_batch(self, commands) -> None:
        """Submit several of this client's commands under one signature.

        The whole batch travels as a single
        :class:`~repro.messages.batching.BatchRequest`, amortizing the
        replica's client-facing verification cost over the batch.  Each
        command keeps its own pending state and timers, so slow-path
        fallback and retries remain per-command (retries degrade to
        singleton :class:`Request` messages).  A batch of one degrades
        to :meth:`submit`.
        """
        commands = list(commands)
        if not commands:
            return
        if len(commands) == 1:
            self.submit(commands[0])
            return
        for command in commands:
            # Validate the whole batch before arming any timers.
            if command.client_id != self.client_id:
                raise ProtocolError(
                    "command does not belong to this client")
        batch_span = None
        for command in commands:
            pending = self._register_pending(command)
            if batch_span is None and pending.span is not None:
                batch_span = pending.span
        self.stats["batches_submitted"] += 1
        batch = BatchRequest(commands=tuple(commands))
        envelope = SignedPayload.create(batch, self.keypair)
        if batch_span is None:
            self.ctx.send(self.target_replica, envelope)
            return
        # One frame carries the whole batch: it rides the first sampled
        # request's root context.  The replica only adopts a context
        # whose trace id matches the command, so the other commands in
        # the batch keep their root span but grow no server-side spans
        # (exact tracing needs client batching off).
        tracer = self.tracer
        prev = tracer.set_current(batch_span.context())
        try:
            self.ctx.send(self.target_replica, envelope)
        finally:
            tracer.set_current(prev)

    @property
    def in_flight(self) -> int:
        return len(self._pending)

    # ------------------------------------------------------------------
    # Message dispatch
    # ------------------------------------------------------------------
    def on_message(self, sender: str, message: Any) -> None:
        if not isinstance(message, SignedPayload):
            return
        if not message.verify(self.registry):
            return
        payload = message.payload
        if isinstance(payload, SpecReply):
            self._on_spec_reply(payload, message)
        elif isinstance(payload, CommitReply):
            self._on_commit_reply(payload)

    # ------------------------------------------------------------------
    # Step 4: speculative replies
    # ------------------------------------------------------------------
    def _on_spec_reply(self, reply: SpecReply,
                       envelope: SignedPayload) -> None:
        if envelope.signer != reply.replica or \
                reply.replica not in self.config.replica_ids:
            return
        pending = self._pending.get((reply.client_id, reply.timestamp))
        if pending is None or pending.phase != "spec":
            return
        pending.spec_replies[reply.replica] = (reply, envelope)

        if self._detect_misbehavior(pending):
            return

        group = self._largest_matching_group(pending)
        # Step 4.1: 3f+1 matching replies -> fast decision.
        if len(group) >= self.config.fast_quorum_size:
            self._deliver_fast(pending, group)
            return
        # Optimization: once every replica has answered and the replies
        # cannot reach a fast quorum, go slow immediately rather than
        # waiting for the timer (the timer remains the correctness net).
        if len(pending.spec_replies) == self.config.n and \
                len(group) < self.config.fast_quorum_size:
            self._try_slow_path(pending)

    def _largest_matching_group(self, pending: _Pending):
        """Largest set of mutually matching replies (step 4's 'matched
        responses')."""
        replies = [r for r, _ in pending.spec_replies.values()]
        best: list = []
        for anchor in replies:
            group = [r for r in replies if anchor.matches_fast(r)]
            if len(group) > len(best):
                best = group
        return best

    def _detect_misbehavior(self, pending: _Pending) -> bool:
        """Step 4.4: compare embedded SPECORDERs; equivocation -> POM."""
        if pending.pom_sent:
            return True
        seen: Dict[str, SignedPayload] = {}
        for reply, _ in pending.spec_replies.values():
            signed_order = reply.spec_order
            if signed_order is None:
                continue
            if signed_order.signer != pending.target:
                continue
            order_digest = signed_order.payload_digest()
            for other_digest, other in seen.items():
                if other_digest != order_digest:
                    self._send_pom(pending, other, signed_order)
                    return True
            seen[order_digest] = signed_order
        return False

    def _send_pom(self, pending: _Pending, first: SignedPayload,
                  second: SignedPayload) -> None:
        pending.pom_sent = True
        self.stats["poms_sent"] += 1
        suspect = pending.target
        owner_number = first.payload.owner_number
        pom = ProofOfMisbehavior(suspect=suspect,
                                 owner_number=owner_number,
                                 evidence=(first, second))
        self.ctx.broadcast(self.config.replica_ids, pom)
        # Recovery will finalize the old instance; retry through another
        # replica so the command itself makes progress.
        self._retry(pending, exclude=suspect)

    # ------------------------------------------------------------------
    # Step 4.1: fast path
    # ------------------------------------------------------------------
    def _deliver_fast(self, pending: _Pending, group) -> None:
        certificate = tuple(
            envelope
            for replica, (reply, envelope) in
            sorted(pending.spec_replies.items())
            if any(reply is g for g in group)
        )[:self.config.fast_quorum_size]
        sample = group[0]
        commit_fast = CommitFast(client_id=self.client_id,
                                 instance=sample.instance,
                                 certificate=certificate)
        # Asynchronous: the reply is returned to the application first;
        # the COMMITFAST is not on the latency-critical path.
        span = pending.span
        if span is None:
            self.ctx.broadcast(self.config.replica_ids, commit_fast)
        else:
            # The COMMITFAST carries the root context so each replica's
            # commit event (and its execution spans) joins the trace.
            tracer = self.tracer
            prev = tracer.set_current(span.context())
            try:
                self.ctx.broadcast(self.config.replica_ids, commit_fast)
            finally:
                tracer.set_current(prev)
        self._deliver(pending, sample.result, "fast")

    # ------------------------------------------------------------------
    # Step 4.2 / 6.2: slow path
    # ------------------------------------------------------------------
    def _on_slow_timeout(self, ident: Tuple[str, int]) -> None:
        pending = self._pending.get(ident)
        if pending is None or pending.phase != "spec":
            return
        self._try_slow_path(pending)

    def _try_slow_path(self, pending: _Pending) -> None:
        quorum = self.config.slow_quorum_for(pending.target)
        available = {r: pending.spec_replies[r]
                     for r in quorum if r in pending.spec_replies}
        if len(available) < self.config.slow_quorum_size:
            # The designated quorum is short (a member may be the faulty
            # replica).  Any 2f+1 signed replies are an equally valid
            # certificate -- the designated set is a determinism
            # optimization, not a safety requirement -- so fall back to
            # whatever we hold.
            available = dict(pending.spec_replies)
        if len(available) < self.config.slow_quorum_size:
            return  # keep waiting; the retry timer is the next net
        # Replies must agree on the instance to be combinable.
        by_instance: Dict[InstanceID, list] = {}
        for replica, (reply, envelope) in available.items():
            by_instance.setdefault(reply.instance, []).append(
                (reply, envelope))
        instance, combinable = max(by_instance.items(),
                                   key=lambda kv: len(kv[1]))
        if len(combinable) < self.config.slow_quorum_size:
            return
        deps = set()
        seq = 0
        for reply, _ in combinable:
            deps.update(reply.deps)
            seq = max(seq, reply.seq)
        certificate = tuple(envelope for _, envelope in combinable)
        commit = Commit(client_id=self.client_id, instance=instance,
                        command=pending.command,
                        deps=tuple(sorted(deps)), seq=seq,
                        certificate=certificate)
        pending.phase = "slow"
        envelope = SignedPayload.create(commit, self.keypair)
        span = pending.span
        if span is None:
            self.ctx.broadcast(self.config.replica_ids, envelope)
            return
        # Mark the fallback and send the combined COMMIT under the root
        # context so the slow-path commit events join the trace.
        tracer = self.tracer
        tracer.event(SPAN_CLIENT_SLOW_PATH, self.client_id,
                     span.context())
        prev = tracer.set_current(span.context())
        try:
            self.ctx.broadcast(self.config.replica_ids, envelope)
        finally:
            tracer.set_current(prev)

    def _on_commit_reply(self, reply: CommitReply) -> None:
        pending = self._pending.get((reply.client_id, reply.timestamp))
        if pending is None or pending.phase != "slow":
            return
        pending.commit_replies[reply.replica] = reply
        # 2f+1 matching results finalize the command (step 6.2).
        by_result: Dict[str, list] = {}
        for crep in pending.commit_replies.values():
            by_result.setdefault(repr(crep.result), []).append(crep)
        for group in by_result.values():
            if len(group) >= self.config.slow_quorum_size:
                self._deliver(pending, group[0].result, "slow")
                return

    # ------------------------------------------------------------------
    # Step 4.3: retry / recovery trigger
    # ------------------------------------------------------------------
    def _on_retry_timeout(self, ident: Tuple[str, int]) -> None:
        pending = self._pending.get(ident)
        if pending is None or pending.phase == "done":
            return
        self._retry(pending)

    def _retry(self, pending: _Pending,
               exclude: Optional[str] = None) -> None:
        """Re-broadcast the request naming the unresponsive recipient (so
        correct replicas relay and suspect it), and re-submit directly to
        the next replica in ring order so the command itself makes
        progress even if the original leader is gone."""
        pending.retries += 1
        self.stats["retries"] += 1
        original = pending.target
        # Relay-first: the first retries re-target the *same* replica
        # (the broadcast below makes every correct replica relay a
        # RESENDREQ to it, and the direct re-send covers a lost
        # REQUEST), because rotating to a fresh command-leader while
        # the original is merely lossy proposes the same command in a
        # *second* competing instance -- replies then split across
        # instances and execution can block on the orphaned one.
        # Rotate only once the original looks genuinely dead (several
        # silent rounds) or is positively excluded (POM).
        if pending.retries > 2 or exclude is not None:
            # Rotate to the next replica (skipping the excluded one).
            idx = self.config.index_of(original)
            for step in range(1, self.config.n + 1):
                candidate = self.config.replica_ids[
                    (idx + step) % self.config.n]
                if candidate != exclude:
                    pending.target = candidate
                    break
        suspicion = Request(command=pending.command,
                            original_replica=original)
        pending.spec_replies.clear()
        pending.commit_replies.clear()
        pending.phase = "spec"
        span = pending.span
        prev = None
        if span is not None:
            # Retries continue the same trace: recovery latency is part
            # of the request's causal story, not a fresh one.
            prev = self.tracer.set_current(span.context())
        try:
            self.ctx.broadcast(
                self.config.others(original),
                SignedPayload.create(suspicion, self.keypair))
            fresh = Request(command=pending.command)
            self.ctx.send(pending.target,
                          SignedPayload.create(fresh, self.keypair))
        finally:
            if span is not None:
                self.tracer.set_current(prev)
        pending.retry_timer = self.ctx.set_timer(
            self.config.retry_timeout, self._on_retry_timeout,
            pending.command.ident)
        pending.slow_timer = self.ctx.set_timer(
            self.config.slow_path_timeout, self._on_slow_timeout,
            pending.command.ident)

    # ------------------------------------------------------------------
    # Delivery
    # ------------------------------------------------------------------
    def _deliver(self, pending: _Pending, result: Any, path: str) -> None:
        if pending.phase == "done":
            return
        pending.phase = "done"
        pending.cancel_timers()
        if pending.retries > 0 and pending.target != self.target_replica:
            # The original target was unresponsive; stick with the replica
            # that actually served us for future requests.
            self.target_replica = pending.target
        latency = self.ctx.now - pending.start_time
        self.stats["delivered_fast" if path == "fast"
                   else "delivered_slow"] += 1
        if pending.span is not None:
            # Close the root span with the commit path that actually
            # delivered; the critical-path analyzer buckets on it.
            self.tracer.end_span(pending.span, attrs={"path": path})
            pending.span = None
        del self._pending[pending.command.ident]
        if self.on_delivery is not None:
            self.on_delivery(pending.command, result, latency, path)
