"""Named netem presets: resolution, key-named errors, sweep axes."""

import pytest

from repro.errors import ConfigurationError
from repro.netem import (
    NETEM_PRESETS,
    NetemProfile,
    netem_preset,
    resolve_netem,
)
from repro.scenario import Scenario
from repro.sweep import SweepSpec

REGIONS = ("virginia", "tokyo", "mumbai", "sydney")


def test_every_preset_is_a_valid_profile():
    for name, profile in NETEM_PRESETS.items():
        assert isinstance(profile, NetemProfile), name
        profile.validate(key=f"preset {name}")


def test_clean_preset_is_noop():
    assert NETEM_PRESETS["clean"].default.is_noop


def test_unknown_preset_names_the_key_and_choices():
    with pytest.raises(ConfigurationError, match="netem"):
        netem_preset("dsl-1998")
    with pytest.raises(ConfigurationError, match="lossy-wan"):
        netem_preset("dsl-1998")


def test_resolve_netem_passthrough_and_type_error():
    profile = NetemProfile()
    assert resolve_netem(None) is None
    assert resolve_netem(profile) is profile
    assert resolve_netem("flaky") is NETEM_PRESETS["flaky"]
    with pytest.raises(ConfigurationError, match="netem"):
        resolve_netem(42)  # type: ignore[arg-type]


def test_scenario_accepts_preset_name():
    scenario = Scenario(name="t", protocol="ezbft",
                        replica_regions=REGIONS, netem="lossy-wan")
    scenario.validate()
    assert scenario.netem_profile() is NETEM_PRESETS["lossy-wan"]
    # The stored field stays the name (round-trips through specs).
    assert scenario.netem == "lossy-wan"


def test_scenario_rejects_unknown_preset_at_validate():
    scenario = Scenario(name="t", protocol="ezbft",
                        replica_regions=REGIONS, netem="nope")
    with pytest.raises(ConfigurationError, match="netem"):
        scenario.validate()


def test_sweep_axis_accepts_preset_names():
    spec = SweepSpec(base="smoke",
                     grid={"netem": ("lossy-wan", "clean")})
    cells = list(spec.cells())
    assert {c.scenario.netem for c in cells} == {"lossy-wan", "clean"}


def test_sweep_axis_rejects_unknown_preset_eagerly():
    spec = SweepSpec(base="smoke", grid={"netem": ("dsl-1998",)})
    with pytest.raises(ConfigurationError, match="netem"):
        list(spec.cells())
