"""Cross-run determinism: the sim backend is a deterministic function
of (scenario, seed), and the tabular exporters must preserve that.

Two runs of the same seeded preset must serialize byte-identically
modulo wall-clock fields (``wall_seconds`` is the only one, by
design), and a sweep's CSV must be byte-stable across runs -- the
regression harness the ROADMAP's figure-reproduction machinery rests
on.
"""

import json

import pytest

from repro.scenario import ScenarioRunner, preset
from repro.sweep import SweepRunner, SweepSpec

#: Presets declared to run on both backends; determinism is asserted
#: on the sim backend (TCP timing is wall-clock by construction).
SMOKE_PRESETS = ("smoke-ezbft", "smoke-pbft", "smoke-zyzzyva",
                 "smoke-fab")


def _canonical(report) -> str:
    data = report.to_dict()
    assert data.pop("wall_seconds") >= 0.0
    return json.dumps(data, sort_keys=False, allow_nan=False)


@pytest.mark.parametrize("name", SMOKE_PRESETS)
def test_same_seed_twice_is_byte_identical(name):
    scenario = preset(name)
    first = ScenarioRunner().run(scenario)
    second = ScenarioRunner().run(scenario)
    assert _canonical(first) == _canonical(second)


def test_different_seed_changes_nothing_structural():
    # A different seed is still a valid run of the same shape: same
    # delivery count (closed loop), same schema.
    scenario = preset("smoke")
    a = ScenarioRunner().run(scenario)
    b = ScenarioRunner().run(scenario.with_overrides(seed=99))
    assert a.delivered == b.delivered
    assert set(a.to_dict()) == set(b.to_dict())


def test_fault_schedule_is_deterministic():
    scenario = preset("crash-recovery")
    first = ScenarioRunner().run(scenario)
    second = ScenarioRunner().run(scenario)
    assert first.fault_log == second.fault_log
    assert _canonical(first) == _canonical(second)


def test_smoke_sweep_csv_stable_across_runs():
    spec = SweepSpec(base="smoke", grid={"clients": (1, 2),
                                         "seed": (1, 2)})
    first = SweepRunner().run(spec).to_csv()
    second = SweepRunner().run(spec).to_csv()
    assert first == second
    header, *rows = first.strip().splitlines()
    assert header.startswith("clients,scenario,protocol,backend,seed")
    assert len(rows) == 4  # one row per (cell, phase)


def test_experiment_csv_stable_across_runs():
    scenario = preset("figure6-smoke")
    first = ScenarioRunner().run(scenario).to_csv()
    second = ScenarioRunner().run(scenario).to_csv()
    assert first == second
