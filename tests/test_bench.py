"""The ``repro bench`` grid definition and baseline comparison gate."""

import pytest

from repro.bench import (
    BENCH_SCHEMA,
    BenchCell,
    PINNED_GRID,
    compare,
    current_rev,
    grid_cells,
)
from repro.errors import ConfigurationError


def _artifact(cells):
    return {"schema": BENCH_SCHEMA, "rev": "abc1234", "grid": "full",
            "cells": cells}


def _sim_cell(throughput=100.0, delivered=1200, p50=250.0, p99=900.0,
              scenario_thr=1200.0):
    return {"backend": "sim", "protocol": "ezbft", "batch_size": 1,
            "delivered": delivered, "throughput": throughput,
            "p50_ms": p50, "p99_ms": p99,
            "scenario_throughput_per_sec": scenario_thr}


# ----------------------------------------------------------------------
# Grid definition
# ----------------------------------------------------------------------
def test_pinned_grid_covers_protocols_and_batches():
    sim = [c for c in PINNED_GRID if c.backend == "sim"]
    assert {(c.protocol, c.batch_size) for c in sim} == {
        (p, b) for p in ("ezbft", "pbft", "zyzzyva", "fab")
        for b in (1, 8)}
    assert [c for c in PINNED_GRID if c.backend == "tcp"]


def test_grid_names_unique():
    names = [c.name for c in PINNED_GRID]
    assert len(names) == len(set(names))


def test_smoke_grid_is_proper_subset():
    smoke = grid_cells("smoke")
    assert 0 < len(smoke) < len(grid_cells("full"))
    assert set(smoke) <= set(PINNED_GRID)


def test_unknown_grid_rejected():
    with pytest.raises(ConfigurationError, match="unknown bench grid"):
        grid_cells("nope")


def test_sim_cells_pin_recovery_timers_past_horizon():
    # Saturation methodology: backlog must never look like a fault.
    for cell in PINNED_GRID:
        if cell.backend != "sim":
            continue
        scenario = cell.scenario()
        assert scenario.retry_timeout > scenario.duration_ms
        assert scenario.suspicion_timeout > scenario.duration_ms
        assert scenario.view_change_timeout > scenario.duration_ms
        assert scenario.workload.mode == "open"
        assert scenario.workload.batch_size == cell.batch_size


def test_current_rev_is_short_hex_or_unknown():
    rev = current_rev()
    assert rev == "unknown" or (4 <= len(rev) <= 16)


# ----------------------------------------------------------------------
# Baseline comparison gate
# ----------------------------------------------------------------------
def test_identical_artifacts_pass():
    art = _artifact({"cell": _sim_cell()})
    assert compare(art, art) == []


def test_throughput_within_tolerance_passes():
    base = _artifact({"cell": _sim_cell(throughput=100.0)})
    new = _artifact({"cell": _sim_cell(throughput=70.0)})
    assert compare(new, base, tolerance=0.35) == []


def test_throughput_below_tolerance_fails():
    base = _artifact({"cell": _sim_cell(throughput=100.0)})
    new = _artifact({"cell": _sim_cell(throughput=50.0)})
    problems = compare(new, base, tolerance=0.35)
    assert len(problems) == 1
    assert "throughput" in problems[0]


def test_faster_run_always_passes():
    base = _artifact({"cell": _sim_cell(throughput=100.0)})
    new = _artifact({"cell": _sim_cell(throughput=400.0)})
    assert compare(new, base) == []


def test_deterministic_sim_field_drift_fails():
    base = _artifact({"cell": _sim_cell(delivered=1200)})
    new = _artifact({"cell": _sim_cell(delivered=1199)})
    problems = compare(new, base)
    assert any("delivered" in p and "regenerate" in p
               for p in problems)


def test_p99_drift_fails_even_when_throughput_holds():
    base = _artifact({"cell": _sim_cell(p99=900.0)})
    new = _artifact({"cell": _sim_cell(p99=901.0)})
    assert any("p99_ms" in p for p in compare(new, base))


def test_missing_cell_in_new_run_fails():
    base = _artifact({"a": _sim_cell(), "b": _sim_cell()})
    new = _artifact({"a": _sim_cell()})
    problems = compare(new, base)
    assert any("grid shrank" in p for p in problems)


def test_reduced_grid_run_gates_only_its_own_cells():
    # CI runs --grid smoke against the committed full-grid baseline:
    # cells absent from the smoke run must not read as a shrunk grid,
    # but the cells it did run are still gated.
    base = _artifact({"a": _sim_cell(), "b": _sim_cell()})
    smoke = dict(_artifact({"a": _sim_cell()}), grid="smoke")
    assert compare(smoke, base) == []
    slow = dict(_artifact({"a": _sim_cell(throughput=10.0)}),
                grid="smoke")
    assert any("throughput" in p for p in compare(slow, base))


def test_smoke_grid_includes_tcp_cell():
    assert any(c.backend == "tcp" for c in grid_cells("smoke"))


def test_new_cell_without_baseline_passes():
    base = _artifact({"a": _sim_cell()})
    new = _artifact({"a": _sim_cell(), "b": _sim_cell()})
    assert compare(new, base) == []


def test_tcp_cells_skip_exact_field_gate():
    base_cell = dict(_sim_cell(), backend="tcp")
    new_cell = dict(_sim_cell(delivered=7), backend="tcp")
    base = _artifact({"tcp": base_cell})
    new = _artifact({"tcp": new_cell})
    assert compare(new, base) == []


def test_bad_tolerance_rejected():
    art = _artifact({"cell": _sim_cell()})
    with pytest.raises(ConfigurationError):
        compare(art, art, tolerance=1.0)
    with pytest.raises(ConfigurationError):
        compare(art, art, tolerance=-0.1)


def test_cells_have_valid_scenarios():
    for cell in PINNED_GRID:
        scenario = cell.scenario()  # validates on construction
        assert scenario.protocol == cell.protocol


def test_bench_cell_is_pinned():
    assert BenchCell(name="x", backend="sim",
                     protocol="ezbft").scenario().seed == \
        BenchCell(name="x", backend="sim",
                  protocol="ezbft").scenario().seed
