"""Wire round-trip tests for every registered message type."""

import pytest

from repro.crypto.keys import KeyPair, KeyRegistry
from repro.errors import SerializationError
from repro.messages import decode
from repro.messages.base import MESSAGE_REGISTRY, SignedPayload
from repro.messages import ezbft, fab, pbft, zyzzyva
from repro.statemachine.base import Command
from repro.types import InstanceID


CMD = Command(client_id="c0", timestamp=7, op="put", key="k", value="v")
INST = InstanceID("r0", 3)
KEYPAIR = KeyPair.generate("r0", seed=b"test")


def _signed(payload):
    return SignedPayload.create(payload, KEYPAIR)


def _spec_order():
    return ezbft.SpecOrder(
        leader="r0", owner_number=0, instance=INST, command=CMD,
        deps=(InstanceID("r1", 0), InstanceID("r2", 5)), seq=4,
        log_digest="abc", request_digest="def")


def _spec_reply():
    return ezbft.SpecReply(
        replica="r1", owner_number=0, instance=INST,
        deps=(InstanceID("r1", 0),), seq=4, request_digest="def",
        client_id="c0", timestamp=7, result="OK",
        spec_order=_signed(_spec_order()))


SAMPLES = [
    ezbft.Request(command=CMD),
    ezbft.Request(command=CMD, original_replica="r2"),
    _spec_order(),
    _spec_reply(),
    ezbft.CommitFast(client_id="c0", instance=INST,
                     certificate=(_signed(_spec_reply()),)),
    ezbft.Commit(client_id="c0", instance=INST, command=CMD,
                 deps=(InstanceID("r1", 0),), seq=9,
                 certificate=(_signed(_spec_reply()),)),
    ezbft.CommitReply(replica="r1", instance=INST, client_id="c0",
                      timestamp=7, result="OK"),
    ezbft.ResendRequest(request=ezbft.Request(command=CMD,
                                              original_replica="r0"),
                        forwarder="r2"),
    ezbft.ProofOfMisbehavior(
        suspect="r0", owner_number=0,
        evidence=(_signed(_spec_order()), _signed(_spec_order()))),
    ezbft.StartOwnerChange(sender="r1", suspect="r0", owner_number=0),
    ezbft.OwnerChange(
        sender="r1", suspect="r0", new_owner_number=1,
        entries=(ezbft.LogEntrySummary(
            instance=INST, command=CMD, deps=(), seq=1,
            status="spec-ordered", owner_number=0,
            proof_kind="spec-order", proof=(_signed(_spec_order()),)),)),
    ezbft.NewOwner(
        new_owner="r1", suspect="r0", new_owner_number=1,
        safe_entries=(ezbft.LogEntrySummary(
            instance=INST, command=None, deps=(), seq=0,
            status="committed", owner_number=1,
            proof_kind="commit", proof=()),)),
    pbft.PBFTRequest(command=CMD),
    pbft.PrePrepare(view=0, seqno=1, request_digest="d",
                    request=pbft.PBFTRequest(command=CMD)),
    pbft.Prepare(view=0, seqno=1, request_digest="d", replica="r1"),
    pbft.PBFTCommit(view=0, seqno=1, request_digest="d", replica="r1"),
    pbft.PBFTReply(view=0, timestamp=7, client_id="c0", replica="r1",
                   result="OK"),
    pbft.PBFTCheckpoint(seqno=128, state_digest="d", replica="r1"),
    pbft.ViewChange(new_view=1, last_stable_seqno=0,
                    prepared=((1, "d", 0),),
                    requests=(pbft.PBFTRequest(command=CMD),),
                    replica="r1"),
    pbft.NewView(new_view=1,
                 view_change_proof=(_signed(pbft.ViewChange(
                     new_view=1, last_stable_seqno=0, prepared=(),
                     requests=(), replica="r1")),),
                 pre_prepares=(), primary="r1"),
    zyzzyva.ZRequest(command=CMD),
    zyzzyva.OrderReq(view=0, seqno=1, history_digest="h",
                     request_digest="d",
                     request=zyzzyva.ZRequest(command=CMD)),
    zyzzyva.SpecResponse(view=0, seqno=1, history_digest="h",
                         request_digest="d", client_id="c0",
                         timestamp=7, replica="r1", result="OK"),
    zyzzyva.ZCommit(client_id="c0", seqno=1, certificate=()),
    zyzzyva.LocalCommit(view=0, seqno=1, request_digest="d",
                        history_digest="h", replica="r1",
                        client_id="c0"),
    zyzzyva.FillHole(view=0, seqno=1, replica="r1"),
    zyzzyva.IHateThePrimary(view=0, replica="r1"),
    zyzzyva.ZNewView(new_view=1, primary="r1", max_committed_seqno=5),
    fab.FabRequest(command=CMD),
    fab.FabPropose(proposal_number=0, seqno=1, request_digest="d",
                   request=fab.FabRequest(command=CMD)),
    fab.FabAccept(proposal_number=0, seqno=1, request_digest="d",
                  acceptor="r1"),
    fab.FabReply(seqno=1, client_id="c0", timestamp=7, replica="r1",
                 result="OK"),
]


@pytest.mark.parametrize("message", SAMPLES,
                         ids=lambda m: type(m).__name__)
def test_wire_roundtrip(message):
    wire = message.to_wire()
    again = decode(wire)
    assert again == message
    assert again.to_wire() == wire


@pytest.mark.parametrize("message", SAMPLES,
                         ids=lambda m: type(m).__name__)
def test_cpu_cost_units_positive(message):
    assert message.cpu_cost_units >= 1


def test_signed_payload_roundtrip_and_verify():
    registry = KeyRegistry()
    registry.register(KEYPAIR)
    signed = _signed(_spec_order())
    wire = signed.to_wire()
    again = SignedPayload.from_wire(wire)
    assert again == signed
    assert again.verify(registry)
    assert again.signer == "r0"


def test_signed_payload_detects_tamper():
    registry = KeyRegistry()
    registry.register(KEYPAIR)
    signed = _signed(_spec_order())
    tampered = SignedPayload(
        payload=ezbft.SpecOrder(
            leader="r0", owner_number=0, instance=INST, command=CMD,
            deps=(), seq=999, log_digest="abc", request_digest="def"),
        signature=signed.signature)
    assert not tampered.verify(registry)


def test_decode_unknown_type():
    with pytest.raises(SerializationError):
        decode({"type": "martian"})


def test_decode_missing_type():
    with pytest.raises(SerializationError):
        decode({"no": "type"})


def test_registry_covers_all_samples():
    for message in SAMPLES:
        assert type(message).MSG_TYPE in MESSAGE_REGISTRY


def test_spec_reply_matching_semantics():
    a = _spec_reply()
    b = ezbft.SpecReply(
        replica="r2", owner_number=a.owner_number, instance=a.instance,
        deps=a.deps, seq=a.seq, request_digest=a.request_digest,
        client_id=a.client_id, timestamp=a.timestamp, result=a.result)
    assert a.matches_fast(b)  # replica identity is not a matching field
    c = ezbft.SpecReply(
        replica="r2", owner_number=a.owner_number, instance=a.instance,
        deps=a.deps, seq=a.seq + 1, request_digest=a.request_digest,
        client_id=a.client_id, timestamp=a.timestamp, result=a.result)
    assert not a.matches_fast(c)


def test_spec_response_matching_semantics():
    a = zyzzyva.SpecResponse(view=0, seqno=1, history_digest="h",
                             request_digest="d", client_id="c0",
                             timestamp=7, replica="r1", result="OK")
    b = zyzzyva.SpecResponse(view=0, seqno=1, history_digest="h",
                             request_digest="d", client_id="c0",
                             timestamp=7, replica="r2", result="OK")
    assert a.matches(b)
    c = zyzzyva.SpecResponse(view=0, seqno=1, history_digest="OTHER",
                             request_digest="d", client_id="c0",
                             timestamp=7, replica="r2", result="OK")
    assert not a.matches(c)
