"""Property-based tests (hypothesis) on core data structures and
protocol invariants."""

import json

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.crypto.digest import canonical_bytes, digest
from repro.graph import linearize, tarjan_scc
from repro.statemachine.base import Command
from repro.statemachine.interference import KVInterference
from repro.statemachine.kvstore import KVStore

# ----------------------------------------------------------------------
# Canonical serialization
# ----------------------------------------------------------------------
json_scalars = st.one_of(st.none(), st.booleans(),
                         st.integers(min_value=-10**9, max_value=10**9),
                         st.text(max_size=20))
json_values = st.recursive(
    json_scalars,
    lambda children: st.one_of(
        st.lists(children, max_size=4),
        st.dictionaries(st.text(max_size=8), children, max_size=4)),
    max_leaves=20)


@given(json_values)
def test_canonical_bytes_deterministic(value):
    assert canonical_bytes(value) == canonical_bytes(value)


@given(st.dictionaries(st.text(max_size=8), json_scalars, max_size=6))
def test_digest_invariant_under_key_order(mapping):
    items = list(mapping.items())
    reversed_mapping = dict(reversed(items))
    assert digest(mapping) == digest(reversed_mapping)


@given(json_values)
def test_canonical_bytes_is_valid_json(value):
    json.loads(canonical_bytes(value))


# ----------------------------------------------------------------------
# Tarjan SCC
# ----------------------------------------------------------------------
graphs = st.dictionaries(
    st.integers(min_value=0, max_value=15),
    st.lists(st.integers(min_value=0, max_value=15), max_size=4),
    max_size=12)


@given(graphs)
def test_scc_partitions_all_nodes(graph):
    components = tarjan_scc(graph)
    seen = [n for c in components for n in c]
    all_nodes = set(graph)
    for succs in graph.values():
        all_nodes.update(succs)
    assert sorted(seen) == sorted(all_nodes)
    assert len(seen) == len(set(seen))  # no node twice


@given(graphs)
def test_scc_respects_dependency_order(graph):
    components = tarjan_scc(graph)
    position = {}
    for idx, component in enumerate(components):
        for node in component:
            position[node] = idx
    for node, succs in graph.items():
        for succ in succs:
            # Dependencies (successors) appear no later.
            assert position[succ] <= position[node]


@given(graphs)
def test_linearize_is_permutation(graph):
    order = linearize(graph, sort_key=lambda n: (0, n, 0))
    all_nodes = set(graph)
    for succs in graph.values():
        all_nodes.update(succs)
    assert sorted(order) == sorted(all_nodes)


# ----------------------------------------------------------------------
# KV store
# ----------------------------------------------------------------------
commands = st.builds(
    Command,
    client_id=st.just("c"),
    timestamp=st.integers(min_value=1, max_value=100),
    op=st.sampled_from(["put", "get", "incr"]),
    key=st.sampled_from(["a", "b", "c"]),
    value=st.integers(min_value=0, max_value=5))


@given(st.lists(commands, max_size=20))
def test_speculative_then_rollback_leaves_final_untouched(cmds):
    kv = KVStore()
    kv.apply(Command(client_id="c", timestamp=0, op="put", key="a",
                     value=1))
    before = kv.final_items()
    for cmd in cmds:
        kv.apply_speculative(cmd)
    kv.rollback_speculative()
    assert kv.final_items() == before
    assert not kv.has_speculative_state


@given(st.lists(commands, max_size=20))
def test_final_equals_speculative_when_applied_identically(cmds):
    final_kv, spec_kv = KVStore(), KVStore()
    for cmd in cmds:
        final_kv.apply(cmd)
        spec_kv.apply_speculative(cmd)
    for key in ("a", "b", "c"):
        assert final_kv.get_final(key) == spec_kv.get_speculative(key)


@given(st.lists(commands, max_size=15), st.randoms())
def test_non_interfering_commands_commute(cmds, rng):
    """Any permutation of pairwise non-interfering commands yields the
    same final state -- the definition ezBFT's correctness rests on."""
    relation = KVInterference()
    independent = []
    for cmd in cmds:
        if all(not relation.interferes(cmd, other)
               for other in independent):
            independent.append(cmd)
    shuffled = list(independent)
    rng.shuffle(shuffled)
    kv1, kv2 = KVStore(), KVStore()
    for cmd in independent:
        kv1.apply(cmd)
    for cmd in shuffled:
        kv2.apply(cmd)
    assert kv1.final_items() == kv2.final_items()


# ----------------------------------------------------------------------
# Interference relation
# ----------------------------------------------------------------------
@given(commands, commands)
def test_interference_symmetric(a, b):
    relation = KVInterference()
    assert relation.interferes(a, b) == relation.interferes(b, a)


@given(commands)
def test_interference_semantics_match_execution(a):
    """If two commands do NOT interfere, executing them in either order
    must give identical final state."""
    relation = KVInterference()
    b = Command(client_id="c2", timestamp=1, op="put", key=a.key,
                value=99)
    kv1, kv2 = KVStore(), KVStore()
    kv1.apply(a), kv1.apply(b)
    kv2.apply(b), kv2.apply(a)
    if kv1.final_items() != kv2.final_items():
        assert relation.interferes(a, b)
