"""Per-checker fixture suites for ``repro.analysis``.

Each test feeds a minimal snippet into the engine at a layer-relevant
path and asserts the *exact* rule ids and line numbers, so a checker
that drifts (extra findings, moved anchors) fails loudly.
"""

import textwrap

import pytest

from repro.analysis import Finding, run_lint
from repro.analysis.checkers.wire_schema import check_class
from repro.analysis.layers import layer_of, wall_clock_allowed


def lint_snippet(tmp_path, relpath, code, rules=None):
    """Write ``code`` at ``relpath`` under a scratch repo root and
    lint just that file."""
    target = tmp_path / relpath
    target.parent.mkdir(parents=True, exist_ok=True)
    target.write_text(textwrap.dedent(code))
    report = run_lint(paths=[relpath], rules=rules,
                      root=str(tmp_path))
    return report.findings


def hits(findings, rule):
    return [(f.rule, f.line) for f in findings if f.rule == rule]


# ----------------------------------------------------------------------
# Layer map
# ----------------------------------------------------------------------
def test_layer_of_paths():
    assert layer_of("src/repro/sim/network.py") == "sim"
    assert layer_of("src/repro/config.py") == "config"
    assert layer_of("src/repro/protocols/pbft/replica.py") == \
        "protocols"
    assert layer_of("src/repro/__main__.py") == "__main__"


def test_wall_clock_layer_split():
    assert not wall_clock_allowed("src/repro/sim/network.py")
    assert not wall_clock_allowed("src/repro/scenario/runner.py")
    assert wall_clock_allowed("src/repro/transport/asyncio_tcp.py")
    assert wall_clock_allowed("src/repro/bench/runner.py")
    assert wall_clock_allowed("src/repro/sweep/runner.py")
    # obs exists only under `repro serve`: live metrics and health
    # timestamps are its job, never reachable from a simulated run.
    assert wall_clock_allowed("src/repro/obs/serve.py")


def test_wall_clock_allowed_in_obs_layer(tmp_path):
    findings = lint_snippet(tmp_path, "src/repro/obs/ok.py", """\
        import time

        def scrape_stamp():
            return time.time()
        """)
    assert hits(findings, "wall-clock") == []


def test_wall_clock_trace_grant_is_module_scoped():
    # Sim traces are byte-identical regression artifacts, so the
    # trace layer is deterministic by default; only the TCP clock
    # module holds wall-clock rights.
    assert wall_clock_allowed("src/repro/trace/live.py")
    assert not wall_clock_allowed("src/repro/trace/tracer.py")
    assert not wall_clock_allowed("src/repro/trace/export.py")
    assert not wall_clock_allowed("src/repro/trace/critical_path.py")


def test_wall_clock_flagged_in_sim_side_trace_module(tmp_path):
    # The module grant must not leak: a wall-clock read anywhere else
    # in the trace layer still trips the determinism checker.
    findings = lint_snippet(tmp_path, "src/repro/trace/bad.py", """\
        import time

        def stamp():
            return time.time()
        """)
    assert hits(findings, "wall-clock") == [("wall-clock", 4)]


def test_wall_clock_allowed_in_trace_live_module(tmp_path):
    findings = lint_snippet(tmp_path, "src/repro/trace/live.py", """\
        import time

        def wall_clock_ms():
            return time.time() * 1000.0
        """)
    assert hits(findings, "wall-clock") == []


# ----------------------------------------------------------------------
# determinism
# ----------------------------------------------------------------------
def test_wall_clock_flagged_in_deterministic_layer(tmp_path):
    findings = lint_snippet(tmp_path, "src/repro/sim/bad.py", """\
        import time

        def now():
            return time.time()

        def stamp():
            return time.perf_counter()
        """)
    assert hits(findings, "wall-clock") == [("wall-clock", 4),
                                            ("wall-clock", 7)]


def test_wall_clock_allowed_in_transport_layer(tmp_path):
    findings = lint_snippet(tmp_path,
                            "src/repro/transport/ok.py", """\
        import time

        def now():
            return time.time()
        """)
    assert hits(findings, "wall-clock") == []


def test_datetime_now_flagged_both_import_styles(tmp_path):
    findings = lint_snippet(tmp_path, "src/repro/core/bad.py", """\
        import datetime
        from datetime import datetime as dt

        a = datetime.datetime.now()
        b = dt.now()
        """)
    assert hits(findings, "wall-clock") == [("wall-clock", 4),
                                            ("wall-clock", 5)]


def test_global_random_flagged_everywhere(tmp_path):
    # Even wall-clock layers must not touch the process-global RNG.
    findings = lint_snippet(tmp_path, "src/repro/sweep/bad.py", """\
        import random

        def pick(items):
            random.seed(7)
            return random.choice(items)
        """)
    assert hits(findings, "global-random") == [("global-random", 4),
                                               ("global-random", 5)]


def test_seeded_random_instance_is_clean(tmp_path):
    findings = lint_snippet(tmp_path, "src/repro/sim/ok.py", """\
        import random

        def pick(items, seed):
            rng = random.Random(seed)
            return rng.choice(items)
        """)
    assert findings == []


def test_builtin_hash_flagged_outside_memo_layers(tmp_path):
    findings = lint_snippet(tmp_path,
                            "src/repro/workload/bad.py", """\
        def seed_for(client_id):
            return hash(client_id)
        """)
    assert hits(findings, "salted-hash") == [("salted-hash", 2)]


def test_builtin_hash_allowed_in_crypto_and_messages(tmp_path):
    for relpath in ("src/repro/crypto/ok.py",
                    "src/repro/messages/ok.py"):
        findings = lint_snippet(tmp_path, relpath, """\
            def memo_key(obj):
                return hash(obj)
            """)
        assert hits(findings, "salted-hash") == []


# ----------------------------------------------------------------------
# asyncio-safety
# ----------------------------------------------------------------------
def test_dangling_task_flagged(tmp_path):
    findings = lint_snippet(tmp_path, "src/repro/transport/bad.py", """\
        import asyncio

        def fire(loop, coro):
            loop.create_task(coro)

        def forget(coro):
            asyncio.ensure_future(coro)
        """)
    assert hits(findings, "dangling-task") == [("dangling-task", 4),
                                               ("dangling-task", 7)]


def test_retained_task_is_clean(tmp_path):
    findings = lint_snippet(tmp_path, "src/repro/transport/ok.py", """\
        def fire(loop, coro, tasks):
            task = loop.create_task(coro)
            tasks.add(task)
            task.add_done_callback(tasks.discard)
        """)
    assert findings == []


def test_get_event_loop_flagged(tmp_path):
    findings = lint_snippet(tmp_path,
                            "src/repro/transport/bad2.py", """\
        import asyncio

        def loop():
            return asyncio.get_event_loop()

        def running():
            return asyncio.get_running_loop()
        """)
    assert hits(findings, "event-loop") == [("event-loop", 4)]


def test_blocking_call_in_async_def_flagged(tmp_path):
    findings = lint_snippet(tmp_path,
                            "src/repro/transport/bad3.py", """\
        import time

        async def drain():
            time.sleep(0.1)
        """)
    assert hits(findings, "blocking-async") == [("blocking-async", 4)]


def test_blocking_call_in_nested_sync_def_not_flagged(tmp_path):
    # A sync helper defined inside async def may run in an executor;
    # only direct await-context code is flagged.
    findings = lint_snippet(tmp_path,
                            "src/repro/transport/ok3.py", """\
        import time

        async def drain():
            def worker():
                time.sleep(0.1)
            return worker
        """)
    assert hits(findings, "blocking-async") == []


# ----------------------------------------------------------------------
# frozen-mutation
# ----------------------------------------------------------------------
def test_frozen_mutation_flagged_outside_memo_layers(tmp_path):
    findings = lint_snippet(tmp_path, "src/repro/core/bad2.py", """\
        def patch(entry):
            object.__setattr__(entry, "seq", 7)
        """)
    assert hits(findings, "frozen-mutation") == \
        [("frozen-mutation", 2)]


def test_frozen_mutation_memo_site_allowed(tmp_path):
    findings = lint_snippet(tmp_path, "src/repro/crypto/ok2.py", """\
        _DIGEST_MEMO = "_repro_digest_memo"

        def memoize(value, hexdigest, content_hash):
            object.__setattr__(value, _DIGEST_MEMO,
                               (content_hash, hexdigest))
        """)
    assert hits(findings, "frozen-mutation") == []


def test_frozen_mutation_wrong_attr_in_memo_layer_flagged(tmp_path):
    findings = lint_snippet(tmp_path, "src/repro/crypto/bad.py", """\
        def patch(value):
            object.__setattr__(value, "signature", None)
        """)
    assert hits(findings, "frozen-mutation") == \
        [("frozen-mutation", 2)]


# ----------------------------------------------------------------------
# crypto-boundary
# ----------------------------------------------------------------------
def test_key_reach_flagged_outside_crypto(tmp_path):
    findings = lint_snippet(tmp_path,
                            "src/repro/protocols/bad.py", """\
        def steal(registry, node_id):
            return registry._keys[node_id].secret
        """)
    assert hits(findings, "key-reach") == [("key-reach", 2),
                                           ("key-reach", 2)]


def test_secret_for_accessor_is_clean(tmp_path):
    findings = lint_snippet(tmp_path,
                            "src/repro/protocols/ok.py", """\
        def derive(registry, node_id):
            return registry.secret_for(node_id)
        """)
    assert findings == []


def test_hashlib_flagged_outside_crypto(tmp_path):
    findings = lint_snippet(tmp_path, "src/repro/core/bad3.py", """\
        import hashlib

        def fingerprint(blob):
            return hashlib.sha256(blob).hexdigest()
        """)
    assert hits(findings, "digest-outside-crypto") == \
        [("digest-outside-crypto", 4)]


def test_hashlib_inside_crypto_is_clean(tmp_path):
    findings = lint_snippet(tmp_path, "src/repro/crypto/ok3.py", """\
        import hashlib

        def fingerprint(blob):
            return hashlib.sha256(blob).hexdigest()
        """)
    assert findings == []


# ----------------------------------------------------------------------
# quorum-arithmetic
# ----------------------------------------------------------------------
def test_quorum_literals_flagged_outside_helpers(tmp_path):
    findings = lint_snippet(tmp_path,
                            "src/repro/protocols/bad2.py", """\
        def prepared(votes, config):
            return len(votes) >= 2 * config.f + 1

        def weak(votes, f):
            return len(votes) >= f + 1

        def fast(votes, config):
            return len(votes) >= 3 * config.f + 1
        """)
    assert hits(findings, "quorum-literal") == \
        [("quorum-literal", 2), ("quorum-literal", 5),
         ("quorum-literal", 8)]


def test_quorum_arithmetic_allowed_in_named_helpers(tmp_path):
    findings = lint_snippet(tmp_path, "src/repro/core/ok.py", """\
        class Config:
            f = 1

            @property
            def slow_quorum_size(self):
                return 2 * self.f + 1

            @property
            def weak_quorum_size(self):
                return self.f + 1
        """)
    assert hits(findings, "quorum-literal") == []


def test_unrelated_plus_one_not_flagged(tmp_path):
    findings = lint_snippet(tmp_path, "src/repro/core/ok2.py", """\
        def advance(index, frontier):
            return index + 1 + frontier
        """)
    assert hits(findings, "quorum-literal") == []


# ----------------------------------------------------------------------
# wire-schema (reflective; synthetic classes via check_class)
# ----------------------------------------------------------------------
def test_wire_parity_clean_class():
    from repro.messages.ezbft import SpecOrder

    assert check_class(SpecOrder) == []


def test_wire_parity_missing_field_in_to_wire():
    import dataclasses

    @dataclasses.dataclass(frozen=True)
    class Lopsided:
        a: int
        b: int

        def to_wire(self):
            return {"type": "x-lopsided", "a": self.a}

        @classmethod
        def from_wire(cls, wire):
            return cls(a=wire["a"], b=0)

    findings = check_class(Lopsided)
    assert [f.rule for f in findings] == ["wire-parity"]
    assert "does not serialize field(s) b" in findings[0].message


def test_wire_parity_unregistered_msg_type():
    import dataclasses

    @dataclasses.dataclass(frozen=True)
    class Ghost:
        MSG_TYPE = "x-ghost-not-registered"
        a: int

        def to_wire(self):
            return {"type": self.MSG_TYPE, "a": self.a}

        @classmethod
        def from_wire(cls, wire):
            return cls(a=wire["a"])

    findings = check_class(Ghost)
    assert [f.rule for f in findings] == ["wire-parity"]
    assert "not in the decode table" in findings[0].message


def test_wire_parity_from_wire_drops_key():
    import dataclasses

    @dataclasses.dataclass(frozen=True)
    class Leaky:
        a: int
        b: int

        def to_wire(self):
            return {"a": self.a, "b": self.b}

        @classmethod
        def from_wire(cls, wire):
            return cls(a=wire["a"], b=0)

    findings = check_class(Leaky)
    assert [f.rule for f in findings] == ["wire-parity"]
    assert "never reads wire key(s) b" in findings[0].message


def test_wire_parity_nested_struct_without_msg_type_ok():
    from repro.messages.ezbft import LogEntrySummary

    # Deliberately unregistered (never rides top-level): only the
    # field-coverage claims apply, and they hold.
    assert check_class(LogEntrySummary) == []


def test_wire_parity_whole_tree_is_clean():
    report = run_lint(rules=["wire-parity"])
    assert report.findings == []


# ----------------------------------------------------------------------
# Engine plumbing
# ----------------------------------------------------------------------
def test_rule_filter_limits_findings(tmp_path):
    code = """\
        import time, asyncio

        def bad():
            asyncio.get_event_loop()
            return time.time()
        """
    all_findings = lint_snippet(tmp_path, "src/repro/sim/bad2.py",
                                code)
    assert sorted({f.rule for f in all_findings}) == \
        ["event-loop", "wall-clock"]
    only = lint_snippet(tmp_path, "src/repro/sim/bad2.py", code,
                        rules=["wall-clock"])
    assert {f.rule for f in only} == {"wall-clock"}


def test_unknown_rule_id_names_available(tmp_path):
    from repro.errors import ConfigurationError

    with pytest.raises(ConfigurationError) as exc:
        lint_snippet(tmp_path, "src/repro/sim/x.py", "pass\n",
                     rules=["no-such-rule"])
    assert "no-such-rule" in str(exc.value)
    assert "wall-clock" in str(exc.value)


def test_findings_are_sorted_and_have_repo_relative_paths(tmp_path):
    findings = lint_snippet(tmp_path, "src/repro/sim/bad3.py", """\
        import time

        def b():
            return time.time()

        def a():
            return time.monotonic()
        """)
    assert [f.line for f in findings] == [4, 7]
    assert all(f.path == "src/repro/sim/bad3.py" for f in findings)
    assert all(isinstance(f, Finding) for f in findings)
