"""Unit tests for the KV store, speculation, and checkpoints."""

import pytest

from repro.errors import StateMachineError
from repro.statemachine.base import Command
from repro.statemachine.checkpoint import Checkpoint, CheckpointStore
from repro.statemachine.kvstore import KVStore


def put(key, value, ts=1, client="c"):
    return Command(client_id=client, timestamp=ts, op="put", key=key,
                   value=value)


def get(key, ts=1, client="c"):
    return Command(client_id=client, timestamp=ts, op="get", key=key)


def incr(key, delta=1, ts=1, client="c"):
    return Command(client_id=client, timestamp=ts, op="incr", key=key,
                   value=delta)


# ----------------------------------------------------------------------
# Final-state semantics
# ----------------------------------------------------------------------
def test_put_then_get():
    kv = KVStore()
    assert kv.apply(put("k", "v")) == "OK"
    assert kv.apply(get("k")) == "v"


def test_get_missing_returns_none():
    kv = KVStore()
    assert kv.apply(get("nope")) is None


def test_incr_from_zero():
    kv = KVStore()
    assert kv.apply(incr("n")) == "OK"
    assert kv.get_final("n") == 1


def test_incr_accumulates():
    kv = KVStore()
    kv.apply(incr("n", 5))
    kv.apply(incr("n", 7))
    assert kv.get_final("n") == 12


def test_incr_default_delta_is_one():
    kv = KVStore()
    kv.apply(Command(client_id="c", timestamp=1, op="incr", key="n"))
    assert kv.get_final("n") == 1


def test_incr_non_int_delta_rejected():
    kv = KVStore()
    with pytest.raises(StateMachineError):
        kv.apply(incr("n", delta="five"))


def test_incr_on_non_int_value_rejected():
    kv = KVStore()
    kv.apply(put("k", "string"))
    with pytest.raises(StateMachineError):
        kv.apply(incr("k"))


def test_noop_does_nothing():
    kv = KVStore()
    assert kv.apply(Command.noop()) is None
    assert kv.final_items() == {}


def test_unknown_op_rejected():
    kv = KVStore()
    with pytest.raises(StateMachineError):
        kv.apply(Command(client_id="c", timestamp=1, op="frobnicate"))


# ----------------------------------------------------------------------
# Speculation
# ----------------------------------------------------------------------
def test_speculative_put_invisible_to_final():
    kv = KVStore()
    kv.apply_speculative(put("k", "spec"))
    assert kv.get_final("k") is None
    assert kv.get_speculative("k") == "spec"


def test_speculative_reads_through_to_final():
    kv = KVStore()
    kv.apply(put("k", "final"))
    assert kv.apply_speculative(get("k")) == "final"


def test_speculative_overlay_shadows_final():
    kv = KVStore()
    kv.apply(put("k", "final"))
    kv.apply_speculative(put("k", "spec"))
    assert kv.apply_speculative(get("k")) == "spec"
    assert kv.get_final("k") == "final"


def test_rollback_discards_overlay():
    kv = KVStore()
    kv.apply(put("k", "final"))
    kv.apply_speculative(put("k", "spec"))
    kv.rollback_speculative()
    assert kv.get_speculative("k") == "final"
    assert not kv.has_speculative_state
    assert kv.rollbacks == 1


def test_rollback_on_empty_overlay_not_counted():
    kv = KVStore()
    kv.rollback_speculative()
    assert kv.rollbacks == 0


def test_speculative_incr_reads_final_base():
    kv = KVStore()
    kv.apply(incr("n", 10))
    kv.apply_speculative(incr("n", 5))
    assert kv.get_speculative("n") == 15
    assert kv.get_final("n") == 10


def test_mutation_results_are_order_independent():
    """Commuting commands must produce identical replies regardless of
    speculative execution order (fast-path matching depends on it)."""
    a, b = incr("n", 2, ts=1), incr("n", 3, ts=2)
    kv1, kv2 = KVStore(), KVStore()
    r1 = [kv1.apply_speculative(a), kv1.apply_speculative(b)]
    r2 = [kv2.apply_speculative(b), kv2.apply_speculative(a)]
    assert r1 == ["OK", "OK"] and r2 == ["OK", "OK"]
    assert kv1.get_speculative("n") == kv2.get_speculative("n") == 5


# ----------------------------------------------------------------------
# Snapshots
# ----------------------------------------------------------------------
def test_snapshot_restore_roundtrip():
    kv = KVStore()
    kv.apply(put("a", 1))
    kv.apply(put("b", [1, 2]))
    snap = kv.snapshot()
    kv.apply(put("a", 999))
    kv.restore(snap)
    assert kv.get_final("a") == 1
    assert kv.get_final("b") == [1, 2]


def test_snapshot_is_deep_copy():
    kv = KVStore()
    kv.apply(put("b", [1, 2]))
    snap = kv.snapshot()
    snap["b"].append(3)
    assert kv.get_final("b") == [1, 2]


def test_restore_clears_speculation():
    kv = KVStore()
    kv.apply_speculative(put("k", "spec"))
    kv.restore({})
    assert not kv.has_speculative_state


def test_op_counters():
    kv = KVStore()
    kv.apply(put("a", 1))
    kv.apply_speculative(put("b", 2))
    assert kv.final_ops == 1
    assert kv.speculative_ops == 1


# ----------------------------------------------------------------------
# Command basics
# ----------------------------------------------------------------------
def test_command_wire_roundtrip():
    cmd = put("k", {"nested": True}, ts=9, client="cx")
    assert Command.from_wire(cmd.to_wire()) == cmd


def test_command_ident():
    cmd = put("k", "v", ts=4, client="cx")
    assert cmd.ident == ("cx", 4)


def test_command_mutation_flags():
    assert put("k", "v").is_mutation
    assert incr("k").is_mutation
    assert not get("k").is_mutation
    assert Command.noop().is_noop


# ----------------------------------------------------------------------
# Checkpoints
# ----------------------------------------------------------------------
def test_checkpoint_capture_digest_stable():
    a = Checkpoint.capture(10, {"k": "v"})
    b = Checkpoint.capture(10, {"k": "v"})
    assert a.state_digest == b.state_digest


def test_checkpoint_store_stabilizes_at_quorum():
    store = CheckpointStore(quorum=3, interval=10)
    cp = Checkpoint.capture(10, {"k": "v"})
    store.record_local(cp)  # counts as our own attestation
    assert store.stable is None
    store.attest(10, cp.state_digest, "r1")
    assert store.stable is None
    store.attest(10, cp.state_digest, "r2")
    assert store.stable is cp


def test_checkpoint_store_mismatched_digest_never_stabilizes():
    store = CheckpointStore(quorum=2, interval=10)
    cp = Checkpoint.capture(10, {"k": "v"})
    store.record_local(cp)
    store.attest(10, "different-digest", "r1")
    assert store.stable is None


def test_checkpoint_due_respects_interval():
    store = CheckpointStore(quorum=2, interval=10)
    assert not store.due(0)
    assert not store.due(9)
    assert store.due(10)
    assert store.due(25)


def test_checkpoint_due_measured_from_last_stable():
    store = CheckpointStore(quorum=1, interval=10)
    cp = Checkpoint.capture(10, {})
    store.record_local(cp)
    assert store.stable is not None
    assert not store.due(15)
    assert store.due(20)


def test_checkpoint_gc_drops_older_state():
    store = CheckpointStore(quorum=1, interval=10)
    store.record_local(Checkpoint.capture(10, {"a": 1}))
    store.record_local(Checkpoint.capture(20, {"a": 2}))
    assert store.stable.watermark == 20
    assert 10 not in store._local


def test_checkpoint_due_measured_from_last_capture_not_stability():
    """Regression: ``due`` used to key off ``stable``, so until the
    first quorum formed every executed command past the first interval
    re-captured a full O(state) snapshot (the re-capture storm)."""
    store = CheckpointStore(quorum=3, interval=10)
    assert store.due(10)
    store.record_local(Checkpoint.capture(10, {"a": 1}))
    assert store.stable is None  # quorum has not formed yet
    # Not due again until a whole further interval has executed, even
    # though nothing is stable.
    for executed in range(10, 20):
        assert not store.due(executed)
    assert store.due(20)
    store.record_local(Checkpoint.capture(20, {"a": 2}))
    assert not store.due(29)


def test_checkpoint_attest_one_live_vote_per_replica_watermark():
    """A byzantine replica attesting many digests at one watermark gets
    exactly one live vote: the first digest it backed."""
    store = CheckpointStore(quorum=3, interval=10)
    cp = Checkpoint.capture(10, {"k": "v"})
    store.record_local(cp)
    store.attest(10, cp.state_digest, "r1")
    for i in range(50):
        store.attest(10, f"bogus-{i}", "byz")
    # The flood created no extra live votes and cannot stack toward a
    # quorum on any digest.
    assert store.vote_of("byz", 10) == "bogus-0"
    assert store.attestation_count(10, "bogus-0") == 1
    assert all(store.attestation_count(10, f"bogus-{i}") == 0
               for i in range(1, 50))
    # The honest digest still stabilizes with honest votes.
    assert store.attest(10, cp.state_digest, "r2")
    assert store.stable is cp


def test_checkpoint_attest_flip_flop_cannot_stabilize_two_digests():
    store = CheckpointStore(quorum=2, interval=10)
    cp = Checkpoint.capture(10, {"k": "v"})
    store.record_local(cp)
    # byz first votes for a bogus digest, then tries the real one: the
    # re-vote is ignored, so byz contributes nothing to the quorum.
    store.attest(10, "bogus", "byz")
    assert not store.attest(10, cp.state_digest, "byz")
    assert store.stable is None
    assert store.attest(10, cp.state_digest, "r1")


def test_checkpoint_install_stable_adopts_newer_only():
    store = CheckpointStore(quorum=1, interval=10)
    store.record_local(Checkpoint.capture(20, {"a": 2}))
    assert store.stable.watermark == 20
    store.install_stable(Checkpoint.capture(10, {"a": 1}))
    assert store.stable.watermark == 20  # older ignored
    store.install_stable(Checkpoint.capture(30, {"a": 3}))
    assert store.stable.watermark == 30
    assert not store.due(35)
    assert store.due(40)
