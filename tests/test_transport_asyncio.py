"""Asyncio TCP transport tests (real sockets on localhost)."""

import asyncio

import pytest

from repro.errors import TransportError
from repro.transport.asyncio_tcp import AsyncioCluster, AsyncioNode


def run(coro):
    return asyncio.run(coro)


def test_frame_roundtrip_between_two_nodes():
    async def scenario():
        from repro.statemachine.base import Command
        from repro.messages.ezbft import Request

        addresses = {"a": ("127.0.0.1", 0),
                     "b": ("127.0.0.1", 0)}
        received = []
        node_a = AsyncioNode("a", addresses["a"], addresses)
        node_b = AsyncioNode("b", addresses["b"], addresses)
        node_b.handler = lambda sender, msg: received.append(
            (sender, msg))
        await node_a.start()
        await node_b.start()
        request = Request(command=Command(
            client_id="c", timestamp=1, op="put", key="k", value="v"))
        node_a.send("b", request)
        await asyncio.sleep(0.1)
        await node_a.stop()
        await node_b.stop()
        return received

    received = run(scenario())
    assert len(received) == 1
    sender, message = received[0]
    assert sender == "a"
    assert message.command.key == "k"


def test_send_to_unknown_destination_raises():
    async def scenario():
        addresses = {"a": ("127.0.0.1", 0)}
        node = AsyncioNode("a", addresses["a"], addresses)
        await node.start()
        try:
            with pytest.raises(TransportError):
                node.send("ghost", object())
        finally:
            await node.stop()

    run(scenario())


def test_send_to_dead_peer_is_lossy_not_fatal():
    async def scenario():
        from repro.statemachine.base import Command
        from repro.messages.ezbft import Request

        addresses = {"a": ("127.0.0.1", 0),
                     "dead": ("127.0.0.1", 0)}
        node = AsyncioNode("a", addresses["a"], addresses)
        await node.start()
        request = Request(command=Command(
            client_id="c", timestamp=1, op="noop"))
        node.send("dead", request)  # nothing listening there
        await asyncio.sleep(0.1)
        await node.stop()
        return node.frames_sent

    assert run(scenario()) == 0  # dropped, no exception


def test_timer_fires_and_cancels():
    async def scenario():
        addresses = {"a": ("127.0.0.1", 0)}
        node = AsyncioNode("a", addresses["a"], addresses)
        ctx = node.context()
        fired = []
        timer1 = ctx.set_timer(20.0, fired.append, "yes")
        timer2 = ctx.set_timer(20.0, fired.append, "no")
        timer2.cancel()
        assert timer1.pending
        assert not timer2.pending
        await asyncio.sleep(0.08)
        assert fired == ["yes"]
        assert not timer1.pending

    run(scenario())


def test_full_ezbft_consensus_over_tcp():
    async def scenario():
        cluster = AsyncioCluster(num_replicas=4)
        await cluster.start()
        client = await cluster.add_client("c0")
        results = []
        for i in range(3):
            result, latency, path = await cluster.request(
                client, "put", f"k{i}", i)
            results.append((result, path))
        # COMMITFAST is off the latency-critical path (asynchronous);
        # give the in-flight commits a moment to land before comparing
        # final state.
        await asyncio.sleep(0.2)
        states = [replica.statemachine.final_items()
                  for replica in cluster.replicas.values()]
        await cluster.stop()
        return results, states

    results, states = run(scenario())
    assert results == [("OK", "fast")] * 3
    assert all(state == states[0] for state in states)
    assert states[0] == {"k0": 0, "k1": 1, "k2": 2}


def test_tcp_reads_after_writes():
    async def scenario():
        cluster = AsyncioCluster(num_replicas=4)
        await cluster.start()
        client = await cluster.add_client("c0")
        await cluster.request(client, "incr", "n", 5)
        result, _, _ = await cluster.request(client, "get", "n")
        await cluster.stop()
        return result

    assert run(scenario()) == 5


@pytest.mark.parametrize("protocol", ["ezbft", "pbft", "zyzzyva", "fab"])
def test_every_registered_protocol_runs_over_tcp(protocol):
    """The cluster wrapper is registry-driven: every builtin protocol
    deploys on real sockets with no transport-side branching."""
    async def scenario():
        cluster = AsyncioCluster(protocol=protocol, num_replicas=4)
        await cluster.start()
        client = await cluster.add_client("c0")
        put_result, _, _ = await cluster.request(client, "put", "k", "v")
        get_result, _, _ = await cluster.request(client, "get", "k")
        await cluster.stop()
        return put_result, get_result

    assert run(scenario()) == ("OK", "v")


def test_concurrent_sends_share_one_connection():
    """Regression: two concurrent sends to an uncached destination used
    to dial duplicate connections and leak one writer."""
    async def scenario():
        from repro.statemachine.base import Command
        from repro.messages.ezbft import Request

        addresses = {"a": ("127.0.0.1", 0),
                     "b": ("127.0.0.1", 0)}
        received = []
        node_a = AsyncioNode("a", addresses["a"], addresses)
        node_b = AsyncioNode("b", addresses["b"], addresses)
        node_b.handler = lambda sender, msg: received.append(msg)
        await node_a.start()
        await node_b.start()
        connections_before = len(node_b._server.sockets)
        for i in range(8):
            request = Request(command=Command(
                client_id="c", timestamp=i + 1, op="put", key="k",
                value=i))
            node_a.send("b", request)  # all queued before any dial wins
        await asyncio.sleep(0.2)
        writers = len(node_a._writers)
        frames = node_a.frames_sent
        await node_a.stop()
        await node_b.stop()
        return writers, frames, len(received)

    writers, frames, delivered = run(scenario())
    assert writers == 1  # a single cached connection, no leaked dials
    assert frames == 8
    assert delivered == 8


def test_send_tasks_are_strongly_referenced():
    """Fire-and-forget sends must survive garbage collection: the node
    keeps strong references until each task completes."""
    async def scenario():
        import gc
        from repro.statemachine.base import Command
        from repro.messages.ezbft import Request

        addresses = {"a": ("127.0.0.1", 0),
                     "b": ("127.0.0.1", 0)}
        received = []
        node_a = AsyncioNode("a", addresses["a"], addresses)
        node_b = AsyncioNode("b", addresses["b"], addresses)
        node_b.handler = lambda sender, msg: received.append(msg)
        await node_a.start()
        await node_b.start()
        node_a.send("b", Request(command=Command(
            client_id="c", timestamp=1, op="noop")))
        assert len(node_a._send_tasks) == 1  # held while in flight
        gc.collect()  # must not reap the pending task
        await asyncio.sleep(0.2)
        assert not node_a._send_tasks  # released on completion
        await node_a.stop()
        await node_b.stop()
        return len(received)

    assert run(scenario()) == 1
