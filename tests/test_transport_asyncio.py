"""Asyncio TCP transport tests (real sockets on localhost)."""

import asyncio

import pytest

from repro.errors import TransportError
from repro.transport.asyncio_tcp import AsyncioCluster, AsyncioNode


def run(coro):
    return asyncio.run(coro)


BASE_PORT = 43900  # distinct from the example's port range


def test_frame_roundtrip_between_two_nodes():
    async def scenario():
        from repro.statemachine.base import Command
        from repro.messages.ezbft import Request

        addresses = {"a": ("127.0.0.1", BASE_PORT),
                     "b": ("127.0.0.1", BASE_PORT + 1)}
        received = []
        node_a = AsyncioNode("a", addresses["a"], addresses)
        node_b = AsyncioNode("b", addresses["b"], addresses)
        node_b.handler = lambda sender, msg: received.append(
            (sender, msg))
        await node_a.start()
        await node_b.start()
        request = Request(command=Command(
            client_id="c", timestamp=1, op="put", key="k", value="v"))
        node_a.send("b", request)
        await asyncio.sleep(0.1)
        await node_a.stop()
        await node_b.stop()
        return received

    received = run(scenario())
    assert len(received) == 1
    sender, message = received[0]
    assert sender == "a"
    assert message.command.key == "k"


def test_send_to_unknown_destination_raises():
    async def scenario():
        addresses = {"a": ("127.0.0.1", BASE_PORT + 10)}
        node = AsyncioNode("a", addresses["a"], addresses)
        await node.start()
        try:
            with pytest.raises(TransportError):
                node.send("ghost", object())
        finally:
            await node.stop()

    run(scenario())


def test_send_to_dead_peer_is_lossy_not_fatal():
    async def scenario():
        from repro.statemachine.base import Command
        from repro.messages.ezbft import Request

        addresses = {"a": ("127.0.0.1", BASE_PORT + 20),
                     "dead": ("127.0.0.1", BASE_PORT + 21)}
        node = AsyncioNode("a", addresses["a"], addresses)
        await node.start()
        request = Request(command=Command(
            client_id="c", timestamp=1, op="noop"))
        node.send("dead", request)  # nothing listening there
        await asyncio.sleep(0.1)
        await node.stop()
        return node.frames_sent

    assert run(scenario()) == 0  # dropped, no exception


def test_timer_fires_and_cancels():
    async def scenario():
        addresses = {"a": ("127.0.0.1", BASE_PORT + 30)}
        node = AsyncioNode("a", addresses["a"], addresses)
        ctx = node.context()
        fired = []
        timer1 = ctx.set_timer(20.0, fired.append, "yes")
        timer2 = ctx.set_timer(20.0, fired.append, "no")
        timer2.cancel()
        assert timer1.pending
        assert not timer2.pending
        await asyncio.sleep(0.08)
        assert fired == ["yes"]
        assert not timer1.pending

    run(scenario())


def test_full_ezbft_consensus_over_tcp():
    async def scenario():
        cluster = AsyncioCluster(num_replicas=4,
                                 base_port=BASE_PORT + 40)
        await cluster.start()
        client = await cluster.add_client("c0")
        results = []
        for i in range(3):
            result, latency, path = await cluster.request(
                client, "put", f"k{i}", i)
            results.append((result, path))
        # COMMITFAST is off the latency-critical path (asynchronous);
        # give the in-flight commits a moment to land before comparing
        # final state.
        await asyncio.sleep(0.2)
        states = [replica.statemachine.final_items()
                  for replica in cluster.replicas.values()]
        await cluster.stop()
        return results, states

    results, states = run(scenario())
    assert results == [("OK", "fast")] * 3
    assert all(state == states[0] for state in states)
    assert states[0] == {"k0": 0, "k1": 1, "k2": 2}


def test_tcp_reads_after_writes():
    async def scenario():
        cluster = AsyncioCluster(num_replicas=4,
                                 base_port=BASE_PORT + 50)
        await cluster.start()
        client = await cluster.add_client("c0")
        await cluster.request(client, "incr", "n", 5)
        result, _, _ = await cluster.request(client, "get", "n")
        await cluster.stop()
        return result

    assert run(scenario()) == 5
