"""Protocol-registry tests: lookup, registration, capability flags, and
the cross-protocol smoke test driven by ``available_protocols()``."""

import pytest

from helpers import DeliveryLog, lan_cluster

from repro.cluster.builder import PROTOCOLS, build_cluster
from repro.core.client import EzBFTClient
from repro.core.replica import EzBFTReplica
from repro.errors import ConfigurationError
from repro.protocols.registry import (
    ProtocolSpec,
    available_protocols,
    get_protocol,
    register_protocol,
    unregister_protocol,
)
from repro.sim.latency import LOCAL
from repro.sim.network import CpuModel


# ----------------------------------------------------------------------
# Registry mechanics
# ----------------------------------------------------------------------
def test_builtin_protocols_registered():
    assert available_protocols() == ("ezbft", "pbft", "zyzzyva", "fab")
    assert tuple(PROTOCOLS) == available_protocols()


def test_unknown_protocol_raises_with_choices():
    with pytest.raises(ConfigurationError) as err:
        get_protocol("raft")
    assert "raft" in str(err.value)
    assert "ezbft" in str(err.value)  # the message lists the choices


def test_build_cluster_unknown_protocol():
    with pytest.raises(ConfigurationError):
        build_cluster("hotstuff", ["local"] * 4, LOCAL)


def test_duplicate_registration_rejected():
    with pytest.raises(ConfigurationError):
        register_protocol(ProtocolSpec(
            name="ezbft", replica_cls=EzBFTReplica,
            client_cls=EzBFTClient))


def test_register_and_unregister_custom_protocol():
    spec = ProtocolSpec(name="myproto", replica_cls=EzBFTReplica,
                        client_cls=EzBFTClient, leaderless=True)
    register_protocol(spec)
    try:
        assert get_protocol("myproto") is spec
        assert "myproto" in available_protocols()
        # A registered protocol builds through the normal builder with
        # zero builder edits.
        cluster = lan_cluster("myproto")
        assert type(cluster.replicas["r0"]) is EzBFTReplica
    finally:
        unregister_protocol("myproto")
    assert "myproto" not in available_protocols()
    with pytest.raises(ConfigurationError):
        unregister_protocol("myproto")


def test_invalid_spec_name_rejected():
    with pytest.raises(ConfigurationError):
        ProtocolSpec(name="", replica_cls=EzBFTReplica,
                     client_cls=EzBFTClient)
    with pytest.raises(ConfigurationError):
        ProtocolSpec(name="PBFT", replica_cls=EzBFTReplica,
                     client_cls=EzBFTClient)


# ----------------------------------------------------------------------
# Capability flags
# ----------------------------------------------------------------------
def test_capability_flags():
    assert get_protocol("ezbft").leaderless
    assert get_protocol("ezbft").speculative
    assert get_protocol("ezbft").supports_batching
    for name in ("pbft", "zyzzyva", "fab"):
        assert not get_protocol(name).leaderless
    assert get_protocol("pbft").supports_batching
    assert get_protocol("zyzzyva").speculative
    assert not get_protocol("fab").supports_batching
    # Checkpoint-driven log compaction: ezBFT and PBFT garbage-collect
    # at stable checkpoints; the other baselines do not (yet).
    assert get_protocol("ezbft").supports_checkpointing
    assert get_protocol("pbft").supports_checkpointing
    assert not get_protocol("zyzzyva").supports_checkpointing
    assert not get_protocol("fab").supports_checkpointing


def test_wiring_kwargs_follow_capabilities():
    from repro.protocols.registry import WiringContext

    wiring = WiringContext(config=None, primary_index=2,
                           interference="REL", target_replica="r1")
    ez = get_protocol("ezbft")
    assert ez.replica_kwargs(wiring) == {"interference": "REL"}
    assert ez.client_kwargs(wiring) == {"target_replica": "r1"}
    pbft = get_protocol("pbft")
    assert pbft.replica_kwargs(wiring) == {"initial_view": 2}
    assert pbft.client_kwargs(wiring) == {"initial_view": 2}


def test_custom_wiring_hook_overrides_defaults():
    calls = []

    def hook(spec, wiring):
        calls.append(spec.name)
        return {"interference": wiring.interference}

    spec = ProtocolSpec(name="hooked", replica_cls=EzBFTReplica,
                        client_cls=EzBFTClient, leaderless=True,
                        replica_wiring=hook)
    register_protocol(spec)
    try:
        cluster = lan_cluster("hooked")
        assert calls == ["hooked"] * 4  # once per replica
        assert len(cluster.replicas) == 4
    finally:
        unregister_protocol("hooked")


# ----------------------------------------------------------------------
# Cross-protocol smoke test, driven by the registry
# ----------------------------------------------------------------------
@pytest.mark.parametrize("protocol", available_protocols())
def test_every_registered_protocol_round_trips(protocol):
    """One put through every registered protocol: delivered once, with
    the canonical result, and applied at the replicas."""
    cluster = lan_cluster(protocol, cpu=CpuModel.free())
    log = DeliveryLog()
    client = cluster.add_client("c0", region="local",
                                on_delivery=log.hook("c0"))
    client.submit(client.next_command("put", "smoke", protocol))
    cluster.run_until_idle()
    assert log.results == ["OK"]
    applied = [
        sm for sm in cluster.statemachines().values()
        if sm.speculative_items().get("smoke") == protocol
    ]
    # At least a quorum of replicas applied the command (speculative
    # protocols may not have finalized everywhere yet).
    assert len(applied) >= cluster.config.slow_quorum_size
