"""The sweep engine: grid expansion, execution, aggregation, export."""

import builtins
import sys

import pytest

from repro.errors import ConfigurationError
from repro.scenario import Scenario, WorkloadSpec, preset
from repro.sweep import (
    SweepRunner,
    SweepSpec,
    apply_params,
    resolve_param,
    run_sweep,
    sweep,
)


def _tiny_base() -> Scenario:
    return preset("smoke").with_overrides(
        workload=WorkloadSpec(mode="closed", clients_per_region=1,
                              requests_per_client=2))


# ----------------------------------------------------------------------
# Axis resolution + expansion
# ----------------------------------------------------------------------
def test_resolve_param_aliases_and_fields():
    assert resolve_param("clients") == "workload.clients_per_region"
    assert resolve_param("contention") == "workload.contention"
    assert resolve_param("batch_size") == "workload.batch_size"
    assert resolve_param("seed") == "seed"
    assert resolve_param("protocol") == "protocol"
    assert resolve_param("requests_per_client") == \
        "workload.requests_per_client"
    assert resolve_param("workload.value_size") == "workload.value_size"
    assert resolve_param("slow_path_timeout") == "slow_path_timeout"


def test_resolve_param_unknown_names_axis():
    with pytest.raises(ConfigurationError, match="knobs"):
        resolve_param("knobs")
    with pytest.raises(ConfigurationError, match="workload.nope"):
        resolve_param("workload.nope")


def test_apply_params_touches_scenario_and_workload():
    base = _tiny_base()
    out = apply_params(base, {"clients": 7, "seed": 42,
                              "contention": 0.5})
    assert out.workload.clients_per_region == 7
    assert out.workload.contention == 0.5
    assert out.seed == 42
    # untouched fields survive
    assert out.protocol == base.protocol
    assert out.workload.requests_per_client == \
        base.workload.requests_per_client


def test_cartesian_expansion_order_and_names():
    spec = SweepSpec(base=_tiny_base(),
                     grid={"clients": (1, 2), "seed": (10, 20)})
    cells = list(spec.cells())
    assert spec.size() == len(cells) == 4
    # itertools.product order: last axis fastest.
    assert [c.param_dict for c in cells] == [
        {"clients": 1, "seed": 10}, {"clients": 1, "seed": 20},
        {"clients": 2, "seed": 10}, {"clients": 2, "seed": 20}]
    assert cells[0].scenario.name == "smoke-ezbft[clients=1,seed=10]"
    assert cells[3].scenario.seed == 20
    assert cells[3].scenario.workload.clients_per_region == 2


def test_zipped_axes_travel_together():
    spec = SweepSpec(
        base=_tiny_base(),
        grid={"seed": (1, 2)},
        zipped={"protocol": ("ezbft", "pbft"),
                "contention": (0.5, 0.0)})
    cells = list(spec.cells())
    assert spec.size() == len(cells) == 4
    combos = {(c.param_dict["seed"], c.param_dict["protocol"],
               c.param_dict["contention"]) for c in cells}
    assert combos == {(1, "ezbft", 0.5), (1, "pbft", 0.0),
                      (2, "ezbft", 0.5), (2, "pbft", 0.0)}


def test_zipped_length_mismatch_rejected():
    spec = SweepSpec(base=_tiny_base(),
                     zipped={"protocol": ("ezbft", "pbft"),
                             "seed": (1, 2, 3)})
    with pytest.raises(ConfigurationError, match="same length"):
        list(spec.cells())


def test_grid_zip_overlap_rejected():
    spec = SweepSpec(base=_tiny_base(), grid={"seed": (1,)},
                     zipped={"seed": (2,)})
    with pytest.raises(ConfigurationError, match="both grid and zip"):
        spec.axes()


def test_aliased_axes_setting_same_field_rejected():
    # 'clients' and 'workload.clients_per_region' are the same knob:
    # one would silently win while the export reported both values.
    spec = SweepSpec(base=_tiny_base(),
                     grid={"clients": (5,)},
                     zipped={"workload.clients_per_region": (9,)})
    with pytest.raises(ConfigurationError,
                       match="'clients'.*'workload.clients_per_region'"):
        spec.axes()
    spec = SweepSpec(base=_tiny_base(),
                     grid={"contention": (0.1,),
                           "workload.contention": (0.9,)})
    with pytest.raises(ConfigurationError, match="both set"):
        list(spec.cells())


def test_scalar_axis_value_is_pinned():
    spec = SweepSpec(base=_tiny_base(),
                     grid={"clients": 3, "seed": (1, 2)})
    cells = list(spec.cells())
    assert len(cells) == 2
    assert all(c.param_dict["clients"] == 3 for c in cells)


def test_preset_name_base_and_bad_cell_fails_eagerly():
    spec = SweepSpec(base="smoke", grid={"contention": (2.0,)})
    with pytest.raises(ConfigurationError, match="contention"):
        list(spec.cells())


def test_mistyped_axis_value_fails_eagerly_naming_axis():
    # float into an int field, string into a numeric field, float
    # seed: each must fail at expansion with the axis named, not
    # mid-run with a raw TypeError.
    for grid in ({"clients": (1.5,)}, {"clients": ("two",)},
                 {"seed": (1.5,)}, {"slow_path_timeout": ("fast",)}):
        spec = SweepSpec(base="smoke", grid=grid)
        axis = next(iter(grid))
        with pytest.raises(ConfigurationError, match=axis):
            list(spec.cells())
    # ints stay welcome in float fields
    assert list(SweepSpec(base="smoke",
                          grid={"slow_path_timeout": (200,)}).cells())


def test_sweep_keyword_constructor():
    spec = sweep("smoke", clients=(2, 4), seed=range(1, 3))
    assert spec.size() == 4


def test_plain_import_repro_keeps_sweep_submodule_accessible():
    # `from repro.sweep import sweep` at package top level would
    # shadow the submodule attribute; pin the module access path.
    import repro
    assert repro.sweep.SweepSpec is SweepSpec
    assert callable(repro.sweep.sweep)


# ----------------------------------------------------------------------
# Execution + aggregation
# ----------------------------------------------------------------------
@pytest.fixture(scope="module")
def smoke_sweep_report():
    spec = SweepSpec(base=_tiny_base(),
                     grid={"clients": (1, 2), "seed": (1, 2)})
    return SweepRunner().run(spec)


def test_runner_runs_every_cell(smoke_sweep_report):
    report = smoke_sweep_report
    assert report.backend == "sim"
    assert len(report.cells) == 4
    for cell in report.cells:
        clients = cell.param_dict["clients"]
        assert cell.report.delivered == clients * 2
        assert cell.report.seed == cell.param_dict["seed"]


def test_series_collapses_seeds(smoke_sweep_report):
    series = smoke_sweep_report.series("clients", y="delivered")
    assert set(series) == {None}
    points = series[None]
    assert [p.x for p in points] == [1, 2]
    assert [p.count for p in points] == [2, 2]
    assert points[0].mean == 2.0
    assert points[1].mean == 4.0


def test_series_stddev_and_ci(smoke_sweep_report):
    import math

    # delivered is deterministic per clients value: spread must be 0.
    points = smoke_sweep_report.series("clients", y="delivered")[None]
    for point in points:
        assert point.count == 2
        assert point.stddev == 0.0
        assert point.ci95 == 0.0
    # throughput varies across seeds: sample stddev and the t-based
    # 95% CI half-width must agree with a hand computation.
    points = smoke_sweep_report.series(
        "clients", y="throughput_per_sec")[None]
    for x in (1, 2):
        samples = [
            cell.report.throughput_per_sec
            for cell in smoke_sweep_report.cells
            if cell.param_dict["clients"] == x]
        mean = sum(samples) / len(samples)
        var = sum((s - mean) ** 2 for s in samples) / (len(samples) - 1)
        point = next(p for p in points if p.x == x)
        assert point.stddev == pytest.approx(math.sqrt(var))
        # df=1 -> t=12.706
        assert point.ci95 == pytest.approx(
            12.706 * math.sqrt(var) / math.sqrt(2))


def test_series_single_sample_has_no_spread():
    spec = SweepSpec(base=_tiny_base(), grid={"clients": (1, 2)})
    points = SweepRunner().run(spec).series("clients",
                                            y="delivered")[None]
    for point in points:
        assert point.count == 1
        assert point.stddev is None
        assert point.ci95 is None


def test_series_csv_export(smoke_sweep_report, tmp_path):
    import csv

    from repro.sweep import SERIES_CSV_COLUMNS

    path = tmp_path / "series.csv"
    text = smoke_sweep_report.series_to_csv(
        "clients", y="throughput_per_sec", path=str(path))
    assert path.read_text() == text
    with open(path, newline="") as fh:
        rows = list(csv.DictReader(fh))
    assert list(rows[0]) == list(SERIES_CSV_COLUMNS)
    assert [row["x"] for row in rows] == ["1", "2"]
    for row in rows:
        assert row["metric"] == "throughput_per_sec"
        assert row["count"] == "2"
        assert float(row["stddev"]) >= 0.0
        assert float(row["ci95"]) >= float(row["stddev"])
    # grouped: one row per (group, x)
    grouped = smoke_sweep_report.series_to_rows(
        "seed", y="delivered", group_by="clients")
    assert {(r["group"], r["x"]) for r in grouped} == \
        {(1, 1), (1, 2), (2, 1), (2, 2)}


def test_series_dedupes_repeated_zipped_axis_values():
    # Fig4 shape: protocol zipped over repeated contention values must
    # yield one point per distinct x, not one per zip row.
    spec = SweepSpec(
        base=_tiny_base(),
        zipped={"protocol": ("ezbft", "ezbft", "pbft"),
                "contention": (0.0, 0.5, 0.0)})
    report = SweepRunner().run(spec)
    series = report.series("contention", y="delivered",
                           group_by="protocol")
    assert list(series) == ["ezbft", "pbft"]  # groups deduped too
    assert [p.x for p in series["ezbft"]] == [0.0, 0.5]
    assert [(p.x, p.count) for p in series["pbft"]] == [(0.0, 1)]


def test_series_group_by_and_unknown_axis(smoke_sweep_report):
    grouped = smoke_sweep_report.series("seed", y="throughput_per_sec",
                                        group_by="clients")
    assert set(grouped) == {1, 2}
    with pytest.raises(ConfigurationError, match="nope"):
        smoke_sweep_report.series("nope")


def test_cell_lookup(smoke_sweep_report):
    report = smoke_sweep_report.cell(clients=2, seed=1)
    assert report.delivered == 4
    with pytest.raises(ConfigurationError, match="2 sweep cells"):
        smoke_sweep_report.cell(clients=2)
    # a typo'd axis is named, not reported as "0 cells match"
    with pytest.raises(ConfigurationError, match="cleints"):
        smoke_sweep_report.cell(cleints=2)


def test_csv_one_row_per_cell_phase(smoke_sweep_report):
    text = smoke_sweep_report.to_csv()
    lines = text.strip().splitlines()
    header = lines[0].split(",")
    # axis columns lead; 'seed' folds into the report's own column
    # (same value) instead of duplicating
    assert header[0] == "clients"
    assert header.count("seed") == 1
    assert "latency_p50_ms" in header
    assert "wall" not in text  # wall-clock never leaks into CSV
    assert len(lines) == 1 + 4  # header + one phase per cell


def test_to_json_round_trips_strict(smoke_sweep_report):
    import json
    data = json.loads(smoke_sweep_report.to_json())
    assert data["sweep"] == "smoke-ezbft-sweep"
    assert data["axes"] == {"clients": [1, 2], "seed": [1, 2]}
    assert len(data["cells"]) == 4
    assert data["cells"][0]["report"]["backend"] == "sim"


def test_parallel_workers_match_serial():
    spec = SweepSpec(base=_tiny_base(),
                     grid={"clients": (1, 2), "seed": (1, 2)})
    serial = SweepRunner(workers=1).run(spec)
    parallel = SweepRunner(workers=2).run(spec)
    assert serial.to_csv() == parallel.to_csv()


def test_run_sweep_convenience():
    report = run_sweep(sweep(_tiny_base(), clients=(1,)))
    assert len(report.cells) == 1


def test_format_text_lists_cells(smoke_sweep_report):
    text = smoke_sweep_report.format_text()
    assert "4 cells" in text
    assert "clients" in text and "seed" in text


# ----------------------------------------------------------------------
# matplotlib is optional: the package imports and sweeps run without
# it; only the plot helper demands it, with an actionable error.
# ----------------------------------------------------------------------
def test_sweep_package_importable_without_matplotlib(monkeypatch):
    real_import = builtins.__import__

    def no_mpl(name, *args, **kwargs):
        if name == "matplotlib" or name.startswith("matplotlib."):
            raise ImportError(f"No module named {name!r}")
        return real_import(name, *args, **kwargs)

    monkeypatch.setattr(builtins, "__import__", no_mpl)
    for mod in [m for m in list(sys.modules)
                if m == "repro.sweep" or m.startswith("repro.sweep.")]:
        monkeypatch.delitem(sys.modules, mod)
    import repro.sweep  # noqa: F401  (re-import under the block)
    assert repro.sweep.SweepSpec is not None


def test_plot_without_matplotlib_raises_install_hint(
        smoke_sweep_report, monkeypatch):
    if "matplotlib" not in sys.modules:
        real_import = builtins.__import__

        def no_mpl(name, *args, **kwargs):
            if name == "matplotlib" or name.startswith("matplotlib."):
                raise ImportError(f"No module named {name!r}")
            return real_import(name, *args, **kwargs)

        monkeypatch.setattr(builtins, "__import__", no_mpl)
    else:
        pytest.skip("matplotlib installed: the hint path is "
                    "exercised on minimal environments")
    from repro.sweep import plot_series
    with pytest.raises(ConfigurationError,
                       match="pip install matplotlib"):
        plot_series(smoke_sweep_report, "clients")


def test_nan_metrics_dropped_from_series():
    # A bucket whose samples are all NaN (e.g. latency of a phase that
    # delivered nothing) is omitted, not propagated, so one starved
    # cell can't poison a whole curve.
    from repro.cluster.metrics import summarize
    from repro.scenario.report import ExperimentReport
    from repro.sweep.report import SweepCellResult, SweepReport

    def report_for(seed, samples):
        summary = summarize(samples)
        return ExperimentReport(
            scenario="synthetic", protocol="ezbft", backend="sim",
            seed=seed, replica_regions=["local"] * 4,
            duration_ms=10.0, phases=[], delivered=len(samples),
            throughput_per_sec=0.0, latency=summary,
            fast_path_ratio=float("nan"), warmup_discarded=0,
            owner_changes=0, view_changes=0, checkpoints_stable=0,
            log_footprint_total=0, client_stats={}, network={})

    sweep_report = SweepReport(
        name="synthetic", backend="sim", axes={"seed": (1, 2)},
        cells=[
            SweepCellResult(params=(("seed", 1),),
                            report=report_for(1, [5.0])),
            SweepCellResult(params=(("seed", 2),),
                            report=report_for(2, [])),  # NaN latency
        ])
    points = sweep_report.series("seed", y="latency_p50_ms")[None]
    assert [p.x for p in points] == [1]  # starved cell dropped
    assert sweep_report.series("seed", y="fast_path_ratio") == {}


# ----------------------------------------------------------------------
# Periodic scraping (ScrapeConfig)
# ----------------------------------------------------------------------
def test_periodic_scrape_requires_tcp_backend():
    from repro.obs import ScrapeConfig

    with pytest.raises(ConfigurationError, match="tcp"):
        SweepRunner(scrape=ScrapeConfig())


def test_scrape_config_pickles_for_worker_processes():
    import pickle

    from repro.obs import ScrapeConfig

    config = ScrapeConfig(interval_s=0.5, timeout_s=1.0)
    assert pickle.loads(pickle.dumps(config)) == config


def test_cell_dict_gains_scrape_key_only_when_sampled():
    from repro.sweep.report import SweepCellResult, SweepReport

    report = run_sweep(sweep("smoke", clients=(1,), seed=(1,)))
    cell = report.cells[0]
    assert cell.scrape is None
    assert sorted(report.to_dict()["cells"][0]) == \
        ["params", "report"]  # the golden-pinned two-key shape

    samples = [{"t_ms": 500.0, "replicas": {"r3": {"executed": 4}}}]
    sampled = SweepReport(
        name=report.name, backend="tcp", axes=report.axes,
        cells=[SweepCellResult(params=cell.params,
                               report=cell.report,
                               scrape=samples)])
    data = sampled.to_dict()["cells"][0]
    assert sorted(data) == ["params", "report", "scrape"]
    assert data["scrape"] == samples
