"""The compact TCP frame codec: round trips and corrupt-peer guards."""

import pytest

from repro.crypto.digest import canonical_bytes
from repro.errors import TransportError
from repro.messages.base import decode
from repro.messages.ezbft import Request
from repro.statemachine.base import Command
from repro.transport.codec import (
    HELLO,
    MESSAGE,
    decode_frame,
    encode_frame,
)


def _request() -> Request:
    return Request(command=Command(client_id="c0", timestamp=3,
                                   op="put", key="k", value="v"))


# ----------------------------------------------------------------------
# Round trips
# ----------------------------------------------------------------------
def test_hello_round_trip():
    body = encode_frame("replica-0", ("10.0.0.7", 9001))
    sender, addr, wire = decode_frame(body)
    assert sender == "replica-0"
    assert addr == ("10.0.0.7", 9001)
    assert wire is None
    assert body[0] == HELLO


def test_message_round_trip_through_registry():
    req = _request()
    body = encode_frame("replica-1", ("localhost", 1234), req)
    sender, addr, wire = decode_frame(body)
    assert sender == "replica-1"
    assert addr == ("localhost", 1234)
    assert body[0] == MESSAGE
    assert decode(wire) == req


def test_message_body_is_canonical_bytes_verbatim():
    # The frame body must reuse the cached canonical encoding, not a
    # second independent serialization.
    req = _request()
    body = encode_frame("n0", ("h", 1), req)
    assert body.endswith(canonical_bytes(req))


def test_unicode_sender_and_host():
    body = encode_frame("réplica-β", ("höst", 65535))
    sender, addr, _ = decode_frame(body)
    assert sender == "réplica-β"
    assert addr == ("höst", 65535)


# ----------------------------------------------------------------------
# Encode-side guards
# ----------------------------------------------------------------------
def test_oversized_sender_rejected():
    with pytest.raises(TransportError):
        encode_frame("x" * 70000, ("h", 1))


def test_port_out_of_range_rejected():
    with pytest.raises(TransportError):
        encode_frame("n0", ("h", 70000))
    with pytest.raises(TransportError):
        encode_frame("n0", ("h", -1))


# ----------------------------------------------------------------------
# Decode-side guards (corrupt peer)
# ----------------------------------------------------------------------
def test_empty_frame_rejected():
    with pytest.raises(TransportError):
        decode_frame(b"")


def test_truncated_header_rejected():
    body = encode_frame("replica-0", ("host", 9001))
    with pytest.raises(TransportError):
        decode_frame(body[:4])


def test_hello_with_trailing_bytes_rejected():
    body = encode_frame("replica-0", ("host", 9001))
    with pytest.raises(TransportError):
        decode_frame(body + b"junk")


def test_unknown_frame_kind_rejected():
    body = encode_frame("replica-0", ("host", 9001))
    with pytest.raises(TransportError, match="kind"):
        decode_frame(bytes((0x7F,)) + body[1:])


def test_non_json_message_body_rejected():
    head = encode_frame("n0", ("h", 1))
    with pytest.raises(TransportError):
        decode_frame(bytes((MESSAGE,)) + head[1:] + b"\xff\x00{")


def test_non_object_json_body_rejected():
    head = encode_frame("n0", ("h", 1))
    with pytest.raises(TransportError, match="expected an object"):
        decode_frame(bytes((MESSAGE,)) + head[1:] + b"[1,2]")
