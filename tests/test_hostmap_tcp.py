"""Multi-machine TCP deployments via host maps: one replica hosted by
a second ``python -m repro serve`` process, dialed over localhost.

Frames carry the sender's listen address, so the serve process learns
ephemeral-port peers (the scenario process's replicas and clients)
from hello announcements and traffic instead of configuration.
"""

import os
import socket
import subprocess
import sys
import time

import pytest

from repro.scenario import (
    Scenario,
    ScenarioRunner,
    WorkloadSpec,
    save_spec,
)

SRC = os.path.join(os.path.dirname(os.path.dirname(
    os.path.abspath(__file__))), "src")


def _free_port() -> int:
    with socket.socket() as sock:
        sock.bind(("127.0.0.1", 0))
        return sock.getsockname()[1]


def _hostmap_scenario(port: int) -> Scenario:
    return Scenario(
        name="hostmap-smoke",
        protocol="ezbft",
        replica_regions=("local",) * 4,
        latency="local",
        hosts={"r3": f"127.0.0.1:{port}"},
        workload=WorkloadSpec(mode="closed", clients_per_region=1,
                              requests_per_client=4,
                              think_time_ms=20.0),
        seed=12,
        slow_path_timeout=300.0,
        retry_timeout=2000.0,
        suspicion_timeout=30_000.0,
        view_change_timeout=30_000.0,
        backends=("tcp",),
    )


def test_two_process_hostmap_scenario(tmp_path):
    port = _free_port()
    scenario = _hostmap_scenario(port)
    spec_path = tmp_path / "hostmap.json"
    save_spec(scenario, str(spec_path))

    env = dict(os.environ)
    env["PYTHONPATH"] = SRC + os.pathsep + env.get("PYTHONPATH", "")
    server = subprocess.Popen(
        [sys.executable, "-m", "repro", "serve",
         "--spec", str(spec_path), "--replicas", "r3"],
        stdout=subprocess.PIPE, stderr=subprocess.STDOUT,
        text=True, env=env)
    try:
        line = server.stdout.readline()
        assert "serving r3@" in line, f"serve did not come up: {line!r}"

        report = ScenarioRunner(backend="tcp", tcp_timeout_s=30.0) \
            .run(scenario)
        # 1 region x 1 client x 4 requests, across two processes.
        assert report.delivered == 4
        assert report.backend == "tcp"
        # r3 lives in the other process: only the local three report.
        assert "r3" not in report.to_dict()["client_stats"]
    finally:
        server.terminate()
        try:
            server.wait(timeout=10)
        except subprocess.TimeoutExpired:
            server.kill()
            server.wait()


def test_hostmap_cluster_starts_only_local_replicas():
    import asyncio

    from repro.scenario import build_tcp_cluster

    scenario = _hostmap_scenario(_free_port())
    cluster = build_tcp_cluster(scenario)
    assert cluster.remote_replica_ids == ("r3",)
    assert cluster.start_replicas == ("r0", "r1", "r2")

    async def check():
        await cluster.start()
        try:
            assert set(cluster.nodes) == {"r0", "r1", "r2"}
            # Remote replica keys exist so signatures verify locally.
            assert cluster.registry.known("r3")
        finally:
            await cluster.stop()

    asyncio.run(check())


def test_hostmap_fault_on_remote_replica_needs_obs_endpoint():
    # Remote-targeted faults are deliverable over the serving
    # process's signed /control endpoint (test_obs_control_remote.py);
    # without an obs entry there is no channel, so the runner still
    # rejects up front -- and the error says what to declare.
    from repro.errors import ConfigurationError
    from repro.scenario import CrashReplica, Partition

    scenario = _hostmap_scenario(_free_port()).with_overrides(
        faults=(CrashReplica(at_ms=10.0, replica="r3"),))
    with pytest.raises(ConfigurationError, match="obs"):
        ScenarioRunner(backend="tcp").run(scenario)
    # Partitions name replicas via sides, not .replica: a side touching
    # a remote replica needs the broadcast channel so both directions
    # get cut.
    scenario = _hostmap_scenario(_free_port()).with_overrides(
        faults=(Partition(at_ms=10.0,
                          sides=(("r3",), ("r0", "r1", "r2"))),))
    with pytest.raises(ConfigurationError, match="obs"):
        ScenarioRunner(backend="tcp").run(scenario)


def test_parse_hostport_forms():
    from repro.errors import TransportError
    from repro.transport.asyncio_tcp import parse_hostport

    assert parse_hostport("10.0.0.1:4000") == ("10.0.0.1", 4000)
    assert parse_hostport(("h", 80)) == ("h", 80)
    for bad in ("nope", "h:0", "h:notaport", 42):
        with pytest.raises(TransportError):
            parse_hostport(bad)
