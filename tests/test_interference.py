"""Unit tests for command-interference relations."""

import pytest

from repro.statemachine.base import Command
from repro.statemachine.interference import (
    AlwaysInterfere,
    KVInterference,
    NeverInterfere,
    ReadWriteInterference,
)


def cmd(op, key="k", value=None, ts=1, client="c"):
    return Command(client_id=client, timestamp=ts, op=op, key=key,
                   value=value)


KV = KVInterference()


def test_different_keys_never_interfere():
    assert not KV.interferes(cmd("put", "a"), cmd("put", "b"))


def test_put_put_same_key_interferes():
    assert KV.interferes(cmd("put"), cmd("put"))


def test_get_get_never_interferes():
    assert not KV.interferes(cmd("get"), cmd("get"))


def test_put_get_interferes():
    assert KV.interferes(cmd("put"), cmd("get"))
    assert KV.interferes(cmd("get"), cmd("put"))


def test_incr_incr_commutes():
    """The paper: mutative-but-commutative ops do not interfere under
    ezBFT's relation (unlike Q/U's read/write classification)."""
    assert not KV.interferes(cmd("incr"), cmd("incr"))


def test_incr_get_interferes():
    assert KV.interferes(cmd("incr"), cmd("get"))


def test_incr_put_interferes():
    assert KV.interferes(cmd("incr"), cmd("put"))


def test_noop_never_interferes():
    assert not KV.interferes(Command.noop(), cmd("put"))
    assert not KV.interferes(cmd("put"), Command.noop())


def test_kv_relation_is_symmetric():
    ops = ["get", "put", "incr", "noop"]
    for a in ops:
        for b in ops:
            ca = cmd(a) if a != "noop" else Command.noop()
            cb = cmd(b, ts=2) if b != "noop" else Command.noop()
            assert KV.interferes(ca, cb) == KV.interferes(cb, ca)


def test_read_write_is_coarser_than_kv():
    """Q/U-style read/write conflicts: incr/incr interferes there but not
    under ezBFT's relation."""
    rw = ReadWriteInterference()
    assert rw.interferes(cmd("incr"), cmd("incr"))
    assert not rw.interferes(cmd("get"), cmd("get"))
    # Everything KV flags, RW flags too.
    ops = ["get", "put", "incr"]
    for a in ops:
        for b in ops:
            if KV.interferes(cmd(a), cmd(b, ts=2)):
                assert rw.interferes(cmd(a), cmd(b, ts=2))


def test_always_interfere():
    always = AlwaysInterfere()
    assert always.interferes(cmd("get", "a"), cmd("get", "b"))
    assert not always.interferes(Command.noop(), cmd("put"))


def test_never_interfere():
    never = NeverInterfere()
    assert not never.interferes(cmd("put"), cmd("put"))
