"""Pytest configuration for the unit-test suite.

The shared cluster fixtures and assertion helpers live in
:mod:`helpers` (``tests/helpers.py``) -- a plain importable module, so
test files use ``from helpers import ...``.  Keeping them out of
``conftest.py`` avoids the classic rootdir pitfall where ``from
conftest import ...`` silently resolves to *another* directory's
conftest (here: ``benchmarks/conftest.py``).
"""
