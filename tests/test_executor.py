"""Unit tests for the dependency-graph final-execution engine."""

import pytest

from repro.core.executor import DependencyExecutor
from repro.core.instance import EntryStatus, LogEntry
from repro.statemachine.base import Command
from repro.statemachine.kvstore import KVStore
from repro.types import InstanceID


def committed(owner, slot, seq, deps=(), key="k", value="v", client=None,
              ts=None, op="put"):
    client = client or f"c-{owner}-{slot}"
    ts = ts if ts is not None else 1
    return LogEntry(
        instance=InstanceID(owner, slot), owner_number=0,
        command=Command(client_id=client, timestamp=ts, op=op, key=key,
                        value=value),
        deps=tuple(deps), seq=seq, status=EntryStatus.COMMITTED)


def index_of(*entries):
    return {e.instance: e for e in entries}


def test_executes_committed_entry():
    kv = KVStore()
    executor = DependencyExecutor(kv)
    e = committed("r0", 0, 1)
    done = executor.try_execute(index_of(e))
    assert [d.instance for d in done] == [e.instance]
    assert e.status == EntryStatus.EXECUTED
    assert e.final_result == "OK"
    assert kv.get_final("k") == "v"


def test_waits_for_uncommitted_dependency():
    kv = KVStore()
    executor = DependencyExecutor(kv)
    dep_iid = InstanceID("r1", 0)
    e = committed("r0", 0, 2, deps=[dep_iid])
    assert executor.try_execute(index_of(e)) == []
    assert e.status == EntryStatus.COMMITTED
    # Dependency commits later; both run.
    dep = committed("r1", 0, 1)
    done = executor.try_execute(index_of(e, dep))
    assert {d.instance for d in done} == {e.instance, dep.instance}


def test_dependency_executes_first():
    kv = KVStore()
    executor = DependencyExecutor(kv)
    dep = committed("r1", 0, 1, value="first")
    e = committed("r0", 0, 2, deps=[dep.instance], value="second")
    executor.try_execute(index_of(e, dep))
    order = [iid for iid, _ in executor.history]
    assert order.index(dep.instance) < order.index(e.instance)
    assert kv.get_final("k") == "second"


def test_cycle_broken_by_seq_then_replica_id():
    kv = KVStore()
    executor = DependencyExecutor(kv)
    a = committed("r0", 0, 2, deps=[InstanceID("r1", 0)], value="a")
    b = committed("r1", 0, 2, deps=[InstanceID("r0", 0)], value="b")
    executor.try_execute(index_of(a, b))
    order = [iid for iid, _ in executor.history]
    # Equal seq -> replica id r0 before r1; so "b" (later) wins the key.
    assert order == [a.instance, b.instance]
    assert kv.get_final("k") == "b"


def test_cycle_lower_seq_first():
    kv = KVStore()
    executor = DependencyExecutor(kv)
    a = committed("r9", 0, 1, deps=[InstanceID("r1", 0)], value="low")
    b = committed("r1", 0, 2, deps=[InstanceID("r9", 0)], value="high")
    executor.try_execute(index_of(a, b))
    order = [iid for iid, _ in executor.history]
    assert order == [a.instance, b.instance]


def test_executed_dependency_satisfies():
    kv = KVStore()
    executor = DependencyExecutor(kv)
    dep = committed("r1", 0, 1)
    executor.try_execute(index_of(dep))
    e = committed("r0", 0, 2, deps=[dep.instance])
    done = executor.try_execute(index_of(e, dep))
    assert [d.instance for d in done] == [e.instance]


def test_duplicate_command_not_reapplied():
    """Same logical command committed in two instances executes once."""
    kv = KVStore()
    executor = DependencyExecutor(kv)
    first = committed("r0", 0, 1, client="cx", ts=1, op="incr", key="n",
                      value=1)
    executor.try_execute(index_of(first))
    assert kv.get_final("n") == 1
    dup = committed("r1", 0, 1, client="cx", ts=1, op="incr", key="n",
                    value=1)
    executor.try_execute(index_of(first, dup))
    assert kv.get_final("n") == 1  # not double-applied
    assert dup.status == EntryStatus.EXECUTED
    assert dup.final_result == first.final_result


def test_noop_fills_slot_without_state_change():
    kv = KVStore()
    executor = DependencyExecutor(kv)
    noop = LogEntry(instance=InstanceID("r0", 0), owner_number=1,
                    command=Command.noop(), deps=(), seq=0,
                    status=EntryStatus.COMMITTED)
    done = executor.try_execute(index_of(noop))
    assert len(done) == 1
    assert kv.final_items() == {}


def test_transitive_block():
    """c depends on b depends on (uncommitted) a: neither b nor c runs."""
    kv = KVStore()
    executor = DependencyExecutor(kv)
    b = committed("r1", 0, 2, deps=[InstanceID("r0", 0)])
    c = committed("r2", 0, 3, deps=[b.instance])
    assert executor.try_execute(index_of(b, c)) == []


def test_identical_runs_produce_identical_histories():
    def run():
        kv = KVStore()
        executor = DependencyExecutor(kv)
        a = committed("r0", 0, 2, deps=[InstanceID("r1", 0)], value="a")
        b = committed("r1", 0, 2, deps=[InstanceID("r0", 0)], value="b")
        c = committed("r2", 0, 5, deps=[a.instance, b.instance],
                      value="c")
        executor.try_execute(index_of(a, b, c))
        return executor.history, kv.final_items()

    assert run() == run()


def test_result_of_and_has_executed():
    kv = KVStore()
    executor = DependencyExecutor(kv)
    e = committed("r0", 0, 1, client="cq", ts=3)
    executor.try_execute(index_of(e))
    assert executor.has_executed(("cq", 3))
    assert executor.result_of(("cq", 3)) == "OK"
    assert not executor.has_executed(("cq", 4))


# ----------------------------------------------------------------------
# Checkpoint truncation and state-transfer install
# ----------------------------------------------------------------------
def test_truncate_gcs_bookkeeping_but_keeps_dedup():
    kv = KVStore()
    executor = DependencyExecutor(kv)
    entries = [committed("r0", slot, slot + 1, client="cq", ts=slot + 1,
                         key=f"k{slot}")
               for slot in range(6)]
    executor.try_execute(index_of(*entries))
    assert executor.executed_count == 6
    executor.truncate(4, {"r0": 4})
    # Absolute accounting is preserved; resident structures shrink.
    assert executor.executed_count == 6
    assert executor.history_offset == 4
    assert len(executor.history) == 2
    assert executor.executed == {InstanceID("r0", 4), InstanceID("r0", 5)}
    # Exactly-once dedup still covers truncated commands.
    for ts in range(1, 7):
        assert executor.has_executed(("cq", ts))
    assert not executor.has_executed(("cq", 7))
    # The latest result per client is retained (reply-cache contract).
    assert executor.result_of(("cq", 6)) == "OK"


def test_truncated_instances_count_as_executed_dependencies():
    kv = KVStore()
    executor = DependencyExecutor(kv)
    executor.truncate(3, {"r0": 3})
    # An entry depending on a GC'd (durably executed) instance runs.
    e = committed("r1", 0, 5, deps=[InstanceID("r0", 1)])
    done = executor.try_execute(index_of(e))
    assert [d.instance for d in done] == [e.instance]


def test_install_fast_forwards_past_snapshot():
    kv = KVStore()
    executor = DependencyExecutor(kv)
    kv.restore({"k0": "transferred"})
    executor.install(
        10, {"r0": 4},
        client_floors={"cq": 8}, client_sparse={"cq": [10]},
        executed_above=[InstanceID("r0", 5)],
        client_results={"cq": "OK"})
    # The latest result per client survives the transfer, so a
    # duplicate commit of the client's newest command replies with the
    # real result, not None.
    assert executor.result_of(("cq", 10)) == "OK"
    assert executor.executed_count == 10
    assert executor.has_executed(("cq", 8))
    assert not executor.has_executed(("cq", 9))
    assert executor.has_executed(("cq", 10))
    assert executor.is_executed_instance(InstanceID("r0", 2))
    assert executor.is_executed_instance(InstanceID("r0", 5))
    assert not executor.is_executed_instance(InstanceID("r0", 6))
    # The floor advances contiguously as the gap fills.
    e = committed("r1", 0, 1, client="cq", ts=9)
    executor.try_execute(index_of(e))
    assert executor.has_executed(("cq", 9))
    assert executor._client_floor["cq"] == 10
    assert not executor._client_sparse.get("cq")
