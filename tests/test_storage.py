"""Durability layer units: WAL framing over torn tails, atomic
snapshots, the segment/snapshot lifecycle, checkpoint-store restore,
and in-process crash recovery of a replica from its data directory."""

import json
import os

import pytest

from repro.errors import ProtocolError
from repro.statemachine.checkpoint import Checkpoint, CheckpointStore
from repro.storage import (
    ReplicaStorage,
    WriteAheadLog,
    atomic_write_json,
    replay_wal,
    valid_prefix_len,
)
from repro.storage.wal import encode_record

from helpers import DeliveryLog, lan_cluster


# ----------------------------------------------------------------------
# WAL framing
# ----------------------------------------------------------------------
def test_wal_round_trip(tmp_path):
    path = str(tmp_path / "wal-0.log")
    wal = WriteAheadLog(path)
    records = [{"kind": "entry", "sender": f"r{i}", "wire": {"n": i}}
               for i in range(5)]
    for record in records:
        wal.append(record)
    wal.close()
    assert list(replay_wal(path)) == records


def test_wal_missing_file_replays_empty(tmp_path):
    assert list(replay_wal(str(tmp_path / "nope.log"))) == []
    assert valid_prefix_len(str(tmp_path / "nope.log")) == 0


def test_wal_replay_stops_at_torn_final_record(tmp_path):
    path = str(tmp_path / "wal-0.log")
    wal = WriteAheadLog(path)
    wal.append({"n": 1})
    wal.append({"n": 2})
    wal.close()
    whole = os.path.getsize(path)
    # kill -9 mid-append: header + part of the body landed.
    with open(path, "ab") as fh:
        fh.write(encode_record({"n": 3, "pad": "x" * 64})[:-10])
    assert list(replay_wal(path)) == [{"n": 1}, {"n": 2}]
    assert valid_prefix_len(path) == whole


def test_wal_replay_stops_at_crc_mismatch(tmp_path):
    path = str(tmp_path / "wal-0.log")
    wal = WriteAheadLog(path)
    wal.append({"n": 1})
    wal.append({"n": 2})
    wal.close()
    data = bytearray(open(path, "rb").read())
    data[-3] ^= 0xFF  # flip a byte inside the second record's body
    with open(path, "wb") as fh:
        fh.write(bytes(data))
    assert list(replay_wal(path)) == [{"n": 1}]


def test_wal_reopen_truncates_torn_tail_before_append(tmp_path):
    path = str(tmp_path / "wal-0.log")
    wal = WriteAheadLog(path)
    wal.append({"n": 1})
    wal.close()
    with open(path, "ab") as fh:
        fh.write(b"\x99" * 7)  # not even a whole header
    wal = WriteAheadLog(path)  # non-fresh reopen
    wal.append({"n": 2})
    wal.close()
    # The torn garbage is gone; the post-recovery append is reachable.
    assert list(replay_wal(path)) == [{"n": 1}, {"n": 2}]


def test_wal_rejects_oversized_record(tmp_path):
    from repro.storage.wal import MAX_RECORD_BYTES

    wal = WriteAheadLog(str(tmp_path / "wal-0.log"))
    with pytest.raises(ValueError):
        wal.append({"blob": "x" * (MAX_RECORD_BYTES + 1)})
    wal.close()


# ----------------------------------------------------------------------
# Atomic JSON writes
# ----------------------------------------------------------------------
def test_atomic_write_json_creates_parents_and_round_trips(tmp_path):
    path = str(tmp_path / "deep" / "nested" / "out.json")
    atomic_write_json(path, {"a": 1})
    with open(path, encoding="utf-8") as fh:
        assert json.load(fh) == {"a": 1}


def test_atomic_write_json_failure_keeps_previous_file(tmp_path):
    path = str(tmp_path / "out.json")
    atomic_write_json(path, {"good": True})
    with pytest.raises(TypeError):
        atomic_write_json(path, {"bad": object()})
    with open(path, encoding="utf-8") as fh:
        assert json.load(fh) == {"good": True}
    # No orphaned tmp files either.
    assert [n for n in os.listdir(tmp_path) if n.endswith(".tmp")] == []


# ----------------------------------------------------------------------
# ReplicaStorage lifecycle
# ----------------------------------------------------------------------
def test_storage_appends_replay_across_reopen(tmp_path):
    storage = ReplicaStorage(str(tmp_path), "r0")
    storage.append_entry("r1", {"t": "order", "slot": 1})
    storage.append_attest("r2", {"t": "attest", "wm": 0})
    storage.close()

    reopened = ReplicaStorage(str(tmp_path), "r0")
    records = list(reopened.replay_records())
    reopened.close()
    assert [r["kind"] for r in records] == ["entry", "attest"]
    assert records[0]["sender"] == "r1"
    assert records[0]["wire"] == {"t": "order", "slot": 1}


def test_storage_snapshot_round_trip_and_corruption_fallback(tmp_path):
    from repro.crypto.digest import digest
    from repro.storage import RecoverySummary

    storage = ReplicaStorage(str(tmp_path), "r0")
    for watermark in (10, 20):
        snap = {"kv": {"k": f"v{watermark}"}}
        storage.save_snapshot(watermark, digest(snap), snap)
    assert storage.load_snapshot()["watermark"] == 20

    # Corrupt the newest: recovery must fall back to the older one and
    # report the invalid file, never delete it.
    newest = os.path.join(str(tmp_path), "r0", "snapshot-20.json")
    with open(newest, "w", encoding="utf-8") as fh:
        fh.write('{"version": 1, "watermark": 20, "truncated')
    summary = RecoverySummary()
    payload = storage.load_snapshot(summary)
    storage.close()
    assert payload["watermark"] == 10
    assert summary.snapshot_watermark == 10
    assert summary.invalid_snapshots == [20]
    assert os.path.exists(newest)


def test_storage_digest_mismatch_is_invalid(tmp_path):
    from repro.crypto.digest import digest

    storage = ReplicaStorage(str(tmp_path), "r0")
    snap = {"kv": {"k": "v"}}
    storage.save_snapshot(5, digest({"kv": {"k": "TAMPERED"}}), snap)
    assert storage.load_snapshot() is None
    storage.close()


def test_storage_rotate_and_prune_retention(tmp_path):
    from repro.crypto.digest import digest

    storage = ReplicaStorage(str(tmp_path), "r0")
    for watermark in (10, 20, 30):
        snap = {"wm": watermark}
        storage.append_entry("r1", {"before": watermark})
        storage.save_snapshot(watermark, digest(snap), snap)
        storage.rotate(watermark)
        storage.append_entry("r1", {"after": watermark})
        storage.prune()
    names = sorted(os.listdir(os.path.join(str(tmp_path), "r0")))
    storage.close()
    # retain=2: snapshots 20 and 30 stay, 10 is gone; segments below
    # the oldest retained snapshot (wal-0, wal-10) are gone too.
    assert names == ["snapshot-20.json", "snapshot-30.json",
                     "wal-20.log", "wal-30.log"]


# ----------------------------------------------------------------------
# CheckpointStore.restore_from (the base_slot-regression bugfix)
# ----------------------------------------------------------------------
def test_restore_from_resumes_interval_from_recovered_watermark():
    snap = {"kv": {}}
    checkpoint = Checkpoint.capture(256, snap)
    store = CheckpointStore.restore_from(checkpoint, quorum=3,
                                         interval=128)
    assert store.stable is checkpoint
    assert store.last_captured == 256
    # The bug: a fresh store (last_captured=0) would fire at 128
    # executions and re-capture from scratch.
    fresh = CheckpointStore(quorum=3, interval=128)
    assert fresh.due(300) is True
    assert store.due(300) is False
    assert store.due(384) is True


def test_restore_from_keeps_local_copy_for_requorum():
    checkpoint = Checkpoint.capture(128, {"kv": {"a": "b"}})
    store = CheckpointStore.restore_from(checkpoint, quorum=3)
    # A later attestation round over the same watermark must find the
    # local capture (stability proofs need the snapshot itself).
    assert store._local[128] is checkpoint


# ----------------------------------------------------------------------
# In-process crash recovery: sim replica -> disk -> fresh replica
# ----------------------------------------------------------------------
def test_replica_recovers_state_from_wal_replay(tmp_path):
    cluster = lan_cluster()
    storage = ReplicaStorage(str(tmp_path), "r0")
    cluster.replicas["r0"].attach_storage(storage)
    log = DeliveryLog()
    client = cluster.add_client("c0", "local",
                                on_delivery=log.hook("c0"))
    for i in range(6):
        client.submit(client.next_command("put", f"k{i}", f"v{i}"))
    cluster.run_until_idle()
    assert log.results == ["OK"] * 6
    expected_state = cluster.kvstores()["r0"].final_items()
    expected_executed = cluster.replicas["r0"].stats["executed"]
    storage.close()

    # A brand-new process: same identity, empty in-memory state.  The
    # client key must exist in the registry (deterministic derivation,
    # same as the original process) for replayed commands to verify.
    fresh = lan_cluster()
    fresh.add_client("c0", "local")
    replica = fresh.replicas["r0"]
    storage2 = ReplicaStorage(str(tmp_path), "r0")
    replica.attach_storage(storage2)
    summary = replica.recover_from_storage()
    storage2.close()

    assert summary.records_replayed > 0
    assert replica.stats["executed"] == expected_executed
    assert fresh.kvstores()["r0"].final_items() == expected_state


def test_replica_recovers_through_stable_checkpoint(tmp_path):
    # Small interval so the run crosses checkpoint boundaries and the
    # store rotates/prunes mid-run; recovery then loads a snapshot AND
    # replays the post-checkpoint suffix.
    cluster = lan_cluster(checkpoint_interval=4)
    storage = ReplicaStorage(str(tmp_path), "r0")
    cluster.replicas["r0"].attach_storage(storage)
    client = cluster.add_client("c0", "local")
    for i in range(11):
        client.submit(client.next_command("put", f"k{i}", f"v{i}"))
    cluster.run_until_idle()
    original = cluster.replicas["r0"]
    assert original.checkpoints.stable is not None
    expected_state = cluster.kvstores()["r0"].final_items()
    expected_watermark = original.checkpoints.stable.watermark
    storage.close()

    fresh = lan_cluster(checkpoint_interval=4)
    fresh.add_client("c0", "local")
    replica = fresh.replicas["r0"]
    storage2 = ReplicaStorage(str(tmp_path), "r0")
    replica.attach_storage(storage2)
    summary = replica.recover_from_storage()
    storage2.close()

    assert summary.snapshot_watermark is not None
    assert fresh.kvstores()["r0"].final_items() == expected_state
    assert replica.checkpoints.stable is not None
    assert replica.checkpoints.stable.watermark >= expected_watermark
    # The restored store resumes its interval from the recovered
    # watermark, not from zero (no immediate re-capture).
    assert not replica.checkpoints.due(expected_watermark + 1)


def test_recover_without_storage_raises():
    cluster = lan_cluster()
    with pytest.raises(ProtocolError):
        cluster.replicas["r0"].recover_from_storage()
