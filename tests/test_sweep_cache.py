"""The sweep cell cache and the report round trip it relies on."""

import json
import os

from repro.scenario import Scenario, WorkloadSpec, preset
from repro.scenario.report import ExperimentReport
from repro.scenario.runner import ScenarioRunner
from repro.sweep import SweepCellCache, SweepRunner, sweep


def _tiny_base() -> Scenario:
    return preset("smoke").with_overrides(
        workload=WorkloadSpec(mode="closed", clients_per_region=1,
                              requests_per_client=2))


def _tiny_sweep():
    return sweep(_tiny_base(), name="cache-test", clients=(1, 2))


# ----------------------------------------------------------------------
# ExperimentReport.from_dict round trip (what the cache persists)
# ----------------------------------------------------------------------
def test_report_round_trips_through_dict():
    report = ScenarioRunner().run(_tiny_base())
    clone = ExperimentReport.from_dict(report.to_dict())
    assert clone.to_dict() == report.to_dict()
    assert clone.to_rows() == report.to_rows()
    assert clone.delivered == report.delivered


def test_report_round_trips_through_json():
    report = ScenarioRunner().run(_tiny_base())
    clone = ExperimentReport.from_dict(
        json.loads(json.dumps(report.to_dict())))
    assert clone.to_dict() == report.to_dict()


# ----------------------------------------------------------------------
# Cache behavior
# ----------------------------------------------------------------------
def test_second_run_hits_cache_and_matches(tmp_path):
    cache_dir = str(tmp_path / "cells")
    first = SweepRunner(cache=cache_dir).run(_tiny_sweep())
    runner = SweepRunner(cache=cache_dir)
    second = runner.run(_tiny_sweep())
    assert runner.cache.stats()["hits"] == len(first.cells)
    assert runner.cache.stats()["misses"] == 0
    assert second.to_csv() == first.to_csv()


def test_cache_key_distinguishes_specs(tmp_path):
    cache = SweepCellCache(str(tmp_path))
    base = _tiny_base()
    k1 = cache.cell_key(base, "sim", 1000)
    k2 = cache.cell_key(base.with_overrides(seed=99), "sim", 1000)
    k3 = cache.cell_key(base, "sim", 2000)
    k4 = cache.cell_key(base, "tcp", 1000)
    assert len({k1, k2, k3, k4}) == 4


def test_corrupt_cache_entry_is_a_miss(tmp_path):
    cache_dir = str(tmp_path / "cells")
    SweepRunner(cache=cache_dir).run(_tiny_sweep())
    # Corrupt every entry on disk; the cache is advisory, so the next
    # run must fall back to recomputing rather than crash.
    for dirpath, _, files in os.walk(cache_dir):
        for name in files:
            with open(os.path.join(dirpath, name), "w") as fh:
                fh.write("{not json")
    runner = SweepRunner(cache=cache_dir)
    report = runner.run(_tiny_sweep())
    assert runner.cache.stats()["hits"] == 0
    assert len(report.cells) == 2


def test_no_cache_runner_recomputes(tmp_path):
    report = SweepRunner().run(_tiny_sweep())  # cache=None
    assert len(report.cells) == 2
    assert not (tmp_path / "cells").exists()


def test_tcp_backend_never_consults_cache(tmp_path):
    runner = SweepRunner(backend="tcp", cache=str(tmp_path))
    assert runner._cell_key(_tiny_base()) is None


def test_uncacheable_scenario_counts_and_runs(tmp_path):
    cache = SweepCellCache(str(tmp_path))
    bad = _tiny_base().with_overrides(
        statemachine=lambda: None)  # live object: not serializable
    assert cache.cell_key(bad, "sim", 1000) is None
    assert cache.stats()["uncacheable"] == 1


def test_get_and_put_accept_none_key(tmp_path):
    cache = SweepCellCache(str(tmp_path))
    assert cache.get(None) is None
    report = ScenarioRunner().run(_tiny_base())
    cache.put(None, report)  # no-op, no crash
