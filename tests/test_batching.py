"""Batching-subsystem tests: the RequestBatcher engine, the batched
ezBFT owner path, and the batched PBFT primary path."""

import pytest

from helpers import (
    DeliveryLog,
    assert_histories_consistent,
    assert_replicas_consistent,
    lan_cluster,
)

from repro.core.batching import RequestBatcher
from repro.errors import ConfigurationError, SerializationError
from repro.messages.batching import (
    BatchPrePrepare,
    BatchRequest,
    BatchSpecOrder,
    batch_cost,
)
from repro.sim.network import CpuModel
from repro.statemachine.base import Command


# ----------------------------------------------------------------------
# RequestBatcher engine
# ----------------------------------------------------------------------
class FakeTimer:
    def __init__(self):
        self.cancelled = False

    def cancel(self):
        self.cancelled = True


class FakeTimerHost:
    """Captures set_timer calls so tests fire timeouts manually."""

    def __init__(self):
        self.timers = []

    def set_timer(self, delay_ms, callback, *args):
        timer = FakeTimer()
        self.timers.append((delay_ms, callback, timer))
        return timer

    def fire_all(self):
        pending, self.timers = self.timers, []
        for _, callback, timer in pending:
            if not timer.cancelled:
                callback()


def test_batcher_flushes_on_size():
    flushes = []
    host = FakeTimerHost()
    batcher = RequestBatcher(3, 100.0, flushes.append,
                             set_timer_fn=host.set_timer)
    batcher.add("a")
    batcher.add("b")
    assert flushes == [] and batcher.pending == 2
    batcher.add("c")
    assert flushes == [["a", "b", "c"]]
    assert batcher.pending == 0
    assert batcher.size_flushes == 1 and batcher.timeout_flushes == 0
    # The armed timer was cancelled by the size flush.
    assert all(t.cancelled for _, _, t in host.timers)


def test_batcher_flushes_on_timeout():
    flushes = []
    host = FakeTimerHost()
    batcher = RequestBatcher(8, 5.0, flushes.append,
                             set_timer_fn=host.set_timer)
    batcher.add("a")
    batcher.add("b")
    assert flushes == []
    host.fire_all()
    assert flushes == [["a", "b"]]
    assert batcher.timeout_flushes == 1
    # A fired-empty timeout is a no-op.
    host.fire_all()
    assert batcher.batches_flushed == 1


def test_batcher_size_one_is_pass_through():
    flushes = []
    host = FakeTimerHost()
    batcher = RequestBatcher(1, 5.0, flushes.append,
                             set_timer_fn=host.set_timer)
    batcher.add("a")
    batcher.add("b")
    assert flushes == [["a"], ["b"]]  # immediate singleton flushes
    assert not batcher.enabled
    assert host.timers == []  # no timers ever armed


def test_batcher_preserves_order_across_flushes():
    flushes = []
    batcher = RequestBatcher(2, 5.0, flushes.append)
    for item in range(5):
        batcher.add(item)
    batcher.flush()
    assert flushes == [[0, 1], [2, 3], [4]]


def test_batcher_rejects_bad_knobs():
    with pytest.raises(ConfigurationError):
        RequestBatcher(0, 5.0, lambda items: None)
    with pytest.raises(ConfigurationError):
        RequestBatcher(2, 0.0, lambda items: None)


# ----------------------------------------------------------------------
# Batched message cost model
# ----------------------------------------------------------------------
def test_batch_messages_cost_sublinearly():
    commands = tuple(Command("c0", t, "put", f"k{t}", "v")
                     for t in range(1, 9))
    batch = BatchRequest(commands=commands)
    singleton_cost = 20 * len(commands)  # one Request is 20 units
    assert batch.cpu_cost_units < 0.2 * singleton_cost
    assert batch.cpu_cost_units == batch_cost(20, 8)
    # Round-trips through the wire form.
    assert BatchRequest.from_wire(batch.to_wire()) == batch
    with pytest.raises(SerializationError):
        BatchRequest(commands=())
    with pytest.raises(SerializationError):
        BatchSpecOrder(leader="r0", owner_number=0, orders=())
    with pytest.raises(SerializationError):
        BatchPrePrepare(view=0, pre_prepares=())


# ----------------------------------------------------------------------
# ezBFT owner path
# ----------------------------------------------------------------------
def test_ezbft_batch_commits_fast_and_consistent():
    cluster = lan_cluster("ezbft", cpu=CpuModel.free(), batch_size=4,
                          batch_timeout_ms=5.0)
    log = DeliveryLog()
    client = cluster.add_client("c0", region="local",
                                on_delivery=log.hook("c0"))
    client.submit_batch([client.next_command("put", f"k{i}", f"v{i}")
                         for i in range(4)])
    cluster.run_until_idle()
    assert log.paths == ["fast"] * 4
    assert client.stats["batches_submitted"] == 1
    owner = cluster.replicas["r0"]
    assert owner.stats["batches_led"] == 1
    assert owner.stats["led"] == 4
    assert_replicas_consistent(cluster)
    assert_histories_consistent(cluster)


def test_ezbft_single_command_batch_degrades_to_unbatched():
    cluster = lan_cluster("ezbft", cpu=CpuModel.free(), batch_size=4,
                          batch_timeout_ms=5.0)
    log = DeliveryLog()
    client = cluster.add_client("c0", region="local",
                                on_delivery=log.hook("c0"))
    client.submit_batch([client.next_command("put", "k", "v")])
    cluster.run_until_idle()
    assert log.paths == ["fast"]
    # Degraded end to end: no batch message was produced anywhere.
    assert client.stats["batches_submitted"] == 0
    assert cluster.replicas["r0"].stats["batches_led"] == 0


def test_ezbft_partial_batch_flushes_on_timeout():
    cluster = lan_cluster("ezbft", cpu=CpuModel.free(), batch_size=64,
                          batch_timeout_ms=5.0)
    log = DeliveryLog()
    client = cluster.add_client("c0", region="local",
                                on_delivery=log.hook("c0"))
    client.submit_batch([client.next_command("put", "a", "1"),
                         client.next_command("put", "b", "2")])
    cluster.run_until_idle()
    assert sorted(log.paths) == ["fast", "fast"]
    assert cluster.replicas["r0"].batcher.timeout_flushes == 1
    assert_replicas_consistent(cluster)


def test_ezbft_batch_size_one_cluster_never_batches():
    cluster = lan_cluster("ezbft", cpu=CpuModel.free())  # batch_size=1
    log = DeliveryLog()
    client = cluster.add_client("c0", region="local",
                                on_delivery=log.hook("c0"))
    for i in range(3):
        client.submit(client.next_command("put", f"k{i}", "v"))
    cluster.run_until_idle()
    assert len(log.records) == 3
    for replica in cluster.replicas.values():
        assert replica.stats["batches_led"] == 0
        assert not replica.batcher.enabled


def test_ezbft_interfering_batch_preserves_order_consistency():
    """Commands inside one batch interfere (same key): every replica
    must execute them in the same order and agree on the final value."""
    cluster = lan_cluster("ezbft", cpu=CpuModel.free(), batch_size=4,
                          batch_timeout_ms=5.0)
    log = DeliveryLog()
    client = cluster.add_client("c0", region="local",
                                on_delivery=log.hook("c0"))
    client.submit_batch([client.next_command("put", "hot", i)
                         for i in range(4)])
    cluster.run_until_idle()
    assert len(log.records) == 4
    assert_histories_consistent(cluster)
    states = {rid: sm.speculative_items().get("hot")
              for rid, sm in cluster.statemachines().items()}
    assert len(set(states.values())) == 1


def test_ezbft_two_clients_share_one_owner_batch():
    """Owner-side batching groups requests from different clients."""
    cluster = lan_cluster("ezbft", cpu=CpuModel.free(), batch_size=2,
                          batch_timeout_ms=5.0)
    log = DeliveryLog()
    # Both clients target r0 (nearest in a LAN is the first replica).
    c0 = cluster.add_client("c0", region="local", target_replica="r0",
                            on_delivery=log.hook("c0"))
    c1 = cluster.add_client("c1", region="local", target_replica="r0",
                            on_delivery=log.hook("c1"))
    c0.submit(c0.next_command("put", "x", "1"))
    c1.submit(c1.next_command("put", "y", "2"))
    cluster.run_until_idle()
    assert len(log.records) == 2
    assert cluster.replicas["r0"].stats["batches_led"] >= 1
    assert_replicas_consistent(cluster)


def test_pom_accepts_batched_equivocation_evidence():
    """A byzantine owner who equivocates inside BATCHSPECORDERs must be
    punishable: replicas accept a POM whose evidence is two conflicting
    signed batches (same slot, different command)."""
    from repro.messages.base import SignedPayload
    from repro.messages.batching import BatchSpecOrder
    from repro.messages.ezbft import ProofOfMisbehavior, SpecOrder
    from repro.types import InstanceID

    cluster = lan_cluster("ezbft", cpu=CpuModel.free())
    suspect = cluster.replicas["r0"]
    judge = cluster.replicas["r1"]

    def order(value, slot=0):
        return SpecOrder(
            leader="r0", owner_number=0,
            instance=InstanceID("r0", slot),
            command=Command(client_id="c0", timestamp=1, op="put",
                            key="k", value=value),
            deps=(), seq=1, log_digest="",
            request_digest=f"d-{value}")

    def batch(*orders):
        return SignedPayload.create(
            BatchSpecOrder(leader="r0", owner_number=0, orders=orders),
            suspect.keypair)

    conflicting = ProofOfMisbehavior(
        suspect="r0", owner_number=0,
        evidence=(batch(order("a")), batch(order("b"))))
    assert judge.owner_changes._pom_valid(conflicting)

    # Two batches over disjoint slots with consistent content are NOT
    # misbehavior.
    consistent = ProofOfMisbehavior(
        suspect="r0", owner_number=0,
        evidence=(batch(order("a", slot=0)),
                  batch(order("b", slot=1))))
    assert not judge.owner_changes._pom_valid(consistent)

    # Mixed evidence: a singleton SPECORDER conflicting with a batch.
    mixed = ProofOfMisbehavior(
        suspect="r0", owner_number=0,
        evidence=(SignedPayload.create(order("a"), suspect.keypair),
                  batch(order("b"))))
    assert judge.owner_changes._pom_valid(mixed)

    # Evidence signed by someone other than the suspect is rejected.
    forged = ProofOfMisbehavior(
        suspect="r0", owner_number=0,
        evidence=(SignedPayload.create(order("a"), judge.keypair),
                  batch(order("b"))))
    assert not judge.owner_changes._pom_valid(forged)

    # A verified batched POM actually triggers suspicion.
    before = judge.stats["owner_changes_started"]
    judge.owner_changes.on_pom(conflicting)
    assert judge.stats["owner_changes_started"] == before + 1


# ----------------------------------------------------------------------
# PBFT primary path
# ----------------------------------------------------------------------
def test_pbft_batch_executes_and_replies():
    cluster = lan_cluster("pbft", cpu=CpuModel.free(), batch_size=4,
                          batch_timeout_ms=5.0)
    log = DeliveryLog()
    client = cluster.add_client("c0", region="local",
                                on_delivery=log.hook("c0"))
    client.submit_batch([client.next_command("put", f"k{i}", i)
                         for i in range(4)])
    cluster.run_until_idle()
    assert log.results == ["OK"] * 4
    primary = cluster.replicas[cluster.primary_id]
    assert primary.stats["batches_proposed"] == 1
    assert primary.stats["pre_prepares"] == 4
    assert_replicas_consistent(cluster)


def test_pbft_single_command_batch_degrades():
    cluster = lan_cluster("pbft", cpu=CpuModel.free(), batch_size=4,
                          batch_timeout_ms=5.0)
    log = DeliveryLog()
    client = cluster.add_client("c0", region="local",
                                on_delivery=log.hook("c0"))
    client.submit_batch([client.next_command("put", "k", "v")])
    cluster.run_until_idle()
    assert log.results == ["OK"]
    assert client.stats["batches_submitted"] == 0
    primary = cluster.replicas[cluster.primary_id]
    assert primary.stats["batches_proposed"] == 0


def test_pbft_partial_batch_flushes_on_timeout():
    cluster = lan_cluster("pbft", cpu=CpuModel.free(), batch_size=64,
                          batch_timeout_ms=5.0)
    log = DeliveryLog()
    client = cluster.add_client("c0", region="local",
                                on_delivery=log.hook("c0"))
    client.submit_batch([client.next_command("put", "a", 1),
                         client.next_command("put", "b", 2)])
    cluster.run_until_idle()
    assert log.results == ["OK"] * 2
    primary = cluster.replicas[cluster.primary_id]
    assert primary.batcher.timeout_flushes == 1
    assert_replicas_consistent(cluster)
