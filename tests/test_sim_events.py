"""Unit tests for the discrete-event simulation kernel."""

import pytest

from repro.errors import SimulationError
from repro.sim.events import Simulator


def test_events_run_in_time_order():
    sim = Simulator()
    fired = []
    sim.schedule(5.0, fired.append, "late")
    sim.schedule(1.0, fired.append, "early")
    sim.schedule(3.0, fired.append, "middle")
    sim.run()
    assert fired == ["early", "middle", "late"]


def test_ties_break_in_insertion_order():
    sim = Simulator()
    fired = []
    for i in range(10):
        sim.schedule(1.0, fired.append, i)
    sim.run()
    assert fired == list(range(10))


def test_clock_advances_to_event_time():
    sim = Simulator()
    sim.schedule(2.5, lambda: None)
    sim.run()
    assert sim.now == pytest.approx(2.5)


def test_zero_delay_runs_after_current_instant_events():
    sim = Simulator()
    fired = []
    sim.schedule(0.0, fired.append, "first")
    sim.schedule(0.0, fired.append, "second")
    sim.run()
    assert fired == ["first", "second"]


def test_negative_delay_rejected():
    sim = Simulator()
    with pytest.raises(SimulationError):
        sim.schedule(-1.0, lambda: None)


def test_schedule_at_absolute_time():
    sim = Simulator()
    fired = []
    sim.schedule_at(4.0, fired.append, "x")
    sim.run()
    assert sim.now == pytest.approx(4.0)
    assert fired == ["x"]


def test_schedule_at_past_rejected():
    sim = Simulator()
    sim.schedule(5.0, lambda: None)
    sim.run()
    with pytest.raises(SimulationError):
        sim.schedule_at(1.0, lambda: None)


def test_cancel_prevents_firing():
    sim = Simulator()
    fired = []
    handle = sim.schedule(1.0, fired.append, "x")
    handle.cancel()
    sim.run()
    assert fired == []
    assert not handle.pending


def test_cancel_is_idempotent():
    sim = Simulator()
    handle = sim.schedule(1.0, lambda: None)
    handle.cancel()
    handle.cancel()
    sim.run()


def test_events_scheduled_during_run_execute():
    sim = Simulator()
    fired = []

    def chain(n):
        fired.append(n)
        if n < 3:
            sim.schedule(1.0, chain, n + 1)

    sim.schedule(1.0, chain, 0)
    sim.run()
    assert fired == [0, 1, 2, 3]
    assert sim.now == pytest.approx(4.0)


def test_run_until_stops_at_boundary():
    sim = Simulator()
    fired = []
    sim.schedule(1.0, fired.append, "a")
    sim.schedule(10.0, fired.append, "b")
    sim.run(until=5.0)
    assert fired == ["a"]
    assert sim.now == pytest.approx(5.0)
    sim.run()
    assert fired == ["a", "b"]


def test_run_until_advances_clock_even_when_queue_empty():
    sim = Simulator()
    sim.run(until=100.0)
    assert sim.now == pytest.approx(100.0)


def test_run_max_events():
    sim = Simulator()
    fired = []
    for i in range(5):
        sim.schedule(float(i + 1), fired.append, i)
    sim.run(max_events=2)
    assert fired == [0, 1]


def test_run_until_idle_returns_count():
    sim = Simulator()
    for i in range(7):
        sim.schedule(float(i), lambda: None)
    assert sim.run_until_idle() == 7


def test_run_until_idle_detects_livelock():
    sim = Simulator()

    def forever():
        sim.schedule(1.0, forever)

    sim.schedule(1.0, forever)
    with pytest.raises(SimulationError):
        sim.run_until_idle(max_events=100)


def test_step_skips_cancelled():
    sim = Simulator()
    fired = []
    handle = sim.schedule(1.0, fired.append, "cancelled")
    sim.schedule(2.0, fired.append, "live")
    handle.cancel()
    assert sim.step() is True
    assert fired == ["live"]
    assert sim.step() is False


def test_events_processed_counter():
    sim = Simulator()
    for i in range(4):
        sim.schedule(1.0, lambda: None)
    sim.run()
    assert sim.events_processed == 4


def test_run_not_reentrant():
    sim = Simulator()
    errors = []

    def nested():
        try:
            sim.run()
        except SimulationError as exc:
            errors.append(exc)

    sim.schedule(1.0, nested)
    sim.run()
    assert len(errors) == 1


def test_determinism_same_schedule_same_order():
    def run_once():
        sim = Simulator()
        fired = []
        sim.schedule(1.0, fired.append, "a")
        sim.schedule(1.0, fired.append, "b")
        sim.schedule(0.5, fired.append, "c")
        sim.run()
        return fired

    assert run_once() == run_once()


def test_run_max_events_skips_cancelled_entries():
    # Cancelled entries interleaved with live ones must not count
    # against the max_events budget (satellite of the perf overhaul:
    # the outer run() loop and step() share one skip path).
    sim = Simulator()
    fired = []
    handles = []
    for i in range(6):
        handles.append(sim.schedule(float(i + 1), fired.append, i))
    for i in (0, 2, 4):
        handles[i].cancel()
    sim.run(max_events=2)
    assert fired == [1, 3]
    assert sim.events_processed == 2


def test_run_counter_lockstep_with_cancelled_entries():
    sim = Simulator()
    fired = []
    keep = [sim.schedule(float(i + 1), fired.append, i)
            for i in range(8)]
    for i in (1, 2, 5):
        keep[i].cancel()
    sim.run()
    assert fired == [0, 3, 4, 6, 7]
    assert sim.events_processed == len(fired)


def test_run_until_idle_skips_cancelled_entries():
    sim = Simulator()
    fired = []
    dead = sim.schedule(1.0, fired.append, "dead")
    sim.schedule(2.0, fired.append, "live")
    dead.cancel()
    assert sim.run_until_idle() == 1
    assert fired == ["live"]


def test_cancelled_head_does_not_stall_run_until():
    sim = Simulator()
    fired = []
    head = sim.schedule(1.0, fired.append, "head")
    sim.schedule(5.0, fired.append, "tail")
    head.cancel()
    sim.run(until=10.0)
    assert fired == ["tail"]
    assert sim.now == pytest.approx(10.0)
