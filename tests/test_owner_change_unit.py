"""Unit tests for owner-change internals: safe-history selection
(Conditions 1 and 2) and vote accounting."""

import pytest

from repro.core.instance import EntryStatus
from repro.messages.base import SignedPayload
from repro.messages.ezbft import (
    LogEntrySummary,
    OwnerChange,
    SpecOrder,
    StartOwnerChange,
)
from repro.statemachine.base import Command
from repro.types import InstanceID

from helpers import lan_cluster


def summary(slot, command, owner_number=1, kind="spec-order",
            status="spec-ordered"):
    return LogEntrySummary(
        instance=InstanceID("r1", slot), command=command, deps=(),
        seq=1, status=status, owner_number=owner_number,
        proof_kind=kind)


def owner_change_msg(sender, entries):
    return OwnerChange(sender=sender, suspect="r1", new_owner_number=2,
                       entries=tuple(entries))


CMD_A = Command(client_id="ca", timestamp=1, op="put", key="k",
                value="a")
CMD_B = Command(client_id="cb", timestamp=1, op="put", key="k",
                value="b")


@pytest.fixture()
def manager():
    cluster = lan_cluster()
    return cluster.replicas["r2"].owner_changes


def test_condition1_commit_certificate_wins(manager):
    messages = [
        owner_change_msg("r0", [summary(0, CMD_A, kind="commit",
                                        status="committed")]),
        owner_change_msg("r3", [summary(0, CMD_B)]),  # spec-order only
    ]
    safe = manager._select_safe_history(messages)
    assert len(safe) == 1
    assert safe[0].command == CMD_A


def test_condition1_highest_owner_number_among_commits(manager):
    messages = [
        owner_change_msg("r0", [summary(0, CMD_A, owner_number=1,
                                        kind="commit")]),
        owner_change_msg("r3", [summary(0, CMD_B, owner_number=3,
                                        kind="commit")]),
    ]
    safe = manager._select_safe_history(messages)
    assert safe[0].command == CMD_B


def test_condition2_requires_weak_quorum_of_matching_specorders(
        manager):
    # f+1 = 2 matching reports -> safe.
    messages = [
        owner_change_msg("r0", [summary(0, CMD_A)]),
        owner_change_msg("r3", [summary(0, CMD_A)]),
    ]
    safe = manager._select_safe_history(messages)
    assert len(safe) == 1
    assert safe[0].command == CMD_A


def test_condition2_disagreement_yields_noop(manager):
    # Two reports that disagree; a later slot IS safe, so slot 0 must be
    # finalized as a no-op to keep the history contiguous.
    messages = [
        owner_change_msg("r0", [summary(0, CMD_A), summary(1, CMD_B)]),
        owner_change_msg("r3", [summary(0, CMD_B), summary(1, CMD_B)]),
    ]
    safe = manager._select_safe_history(messages)
    assert len(safe) == 2
    assert safe[0].command.is_noop
    assert safe[1].command == CMD_B


def test_empty_views_give_empty_history(manager):
    messages = [owner_change_msg("r0", []),
                owner_change_msg("r3", [])]
    assert manager._select_safe_history(messages) == ()


def test_gap_below_safe_slot_filled_with_noop(manager):
    messages = [
        owner_change_msg("r0", [summary(2, CMD_A)]),
        owner_change_msg("r3", [summary(2, CMD_A)]),
    ]
    safe = manager._select_safe_history(messages)
    assert [s.instance.slot for s in safe] == [0, 1, 2]
    assert safe[0].command.is_noop and safe[1].command.is_noop
    assert safe[2].command == CMD_A


def test_duplicate_votes_counted_once():
    cluster = lan_cluster()
    replica = cluster.replicas["r2"]
    msg = StartOwnerChange(sender="r0", suspect="r1", owner_number=1)
    replica.owner_changes.on_start_owner_change(msg)
    replica.owner_changes.on_start_owner_change(msg)  # duplicate
    cluster.run_until_idle()
    # One distinct voter < f+1: no commitment to the change.
    assert not replica.spaces["r1"].frozen


def test_stale_owner_number_vote_ignored():
    cluster = lan_cluster()
    replica = cluster.replicas["r2"]
    stale = StartOwnerChange(sender="r0", suspect="r1",
                             owner_number=99)  # space is at 1
    replica.owner_changes.on_start_owner_change(stale)
    assert ("r1", 99) not in replica.owner_changes._votes


def test_self_suspicion_is_refused():
    cluster = lan_cluster()
    replica = cluster.replicas["r1"]
    replica.owner_changes.suspect("r1")
    cluster.run_until_idle()
    assert replica.stats["owner_changes_started"] == 0


def test_new_owner_message_from_wrong_replica_rejected():
    cluster = lan_cluster()
    client = cluster.add_client("c0", "local", target_replica="r1")
    client.submit(client.next_command("put", "k", "v"))
    cluster.run_until_idle()
    from repro.messages.ezbft import NewOwner

    replica = cluster.replicas["r0"]
    # Owner number 2 maps to r2; r3 claiming it must be ignored.
    bogus = NewOwner(new_owner="r3", suspect="r1", new_owner_number=2,
                     safe_entries=())
    replica.owner_changes.on_new_owner(bogus)
    assert not replica.spaces["r1"].frozen
    assert replica.spaces["r1"].owner_number == 1
