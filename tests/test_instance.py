"""Unit tests for instance spaces and log entries."""

import pytest

from repro.core.instance import EntryStatus, InstanceSpace, LogEntry
from repro.errors import InstanceSpaceFrozenError, ProtocolError
from repro.statemachine.base import Command
from repro.types import InstanceID


def entry(owner="r0", slot=0, seq=1, client="c", ts=1):
    return LogEntry(
        instance=InstanceID(owner, slot), owner_number=0,
        command=Command(client_id=client, timestamp=ts, op="put",
                        key="k", value="v"),
        deps=(), seq=seq)


def test_status_ordering():
    assert EntryStatus.COMMITTED.at_least(EntryStatus.SPEC_ORDERED)
    assert EntryStatus.EXECUTED.at_least(EntryStatus.COMMITTED)
    assert not EntryStatus.SPEC_ORDERED.at_least(EntryStatus.COMMITTED)
    assert EntryStatus.COMMITTED.at_least(EntryStatus.COMMITTED)


def test_sort_key_orders_by_seq_then_owner_then_slot():
    a = entry(owner="r1", slot=0, seq=1)
    b = entry(owner="r0", slot=0, seq=2)
    c = entry(owner="r0", slot=1, seq=2)
    keys = sorted([c.sort_key, b.sort_key, a.sort_key])
    assert keys == [a.sort_key, b.sort_key, c.sort_key]


def test_allocate_slots_monotonic():
    space = InstanceSpace("r0", 0)
    assert space.allocate_slot() == 0
    assert space.allocate_slot() == 1
    assert space.allocate_slot() == 2


def test_put_and_get():
    space = InstanceSpace("r0", 0)
    e = entry(slot=3)
    space.put(e)
    assert 3 in space
    assert space.get(3) is e
    assert space.get(99) is None


def test_put_wrong_space_rejected():
    space = InstanceSpace("r0", 0)
    with pytest.raises(ProtocolError):
        space.put(entry(owner="r1"))


def test_frozen_space_rejects_put():
    space = InstanceSpace("r0", 0)
    space.frozen = True
    with pytest.raises(InstanceSpaceFrozenError):
        space.put(entry())


def test_force_put_bypasses_freeze():
    space = InstanceSpace("r0", 0)
    space.frozen = True
    space.force_put(entry(slot=0))
    assert len(space) == 1


def test_entries_iterate_in_slot_order():
    space = InstanceSpace("r0", 0)
    for slot in (5, 1, 3):
        space.put(entry(slot=slot, ts=slot))
    assert [e.instance.slot for e in space.entries()] == [1, 3, 5]


def test_max_occupied_slot():
    space = InstanceSpace("r0", 0)
    assert space.max_occupied_slot == -1
    space.put(entry(slot=4))
    assert space.max_occupied_slot == 4


def test_instance_id_wire_and_str():
    iid = InstanceID("r2", 7)
    assert InstanceID.from_wire(iid.to_wire()) == iid
    assert str(iid) == "r2.7"
