"""Unit-level tests for the byzantine behaviour implementations."""

import pytest

from repro.byzantine import (
    CorruptResultReplica,
    DepSuppressingReplica,
    EquivocatingLeaderReplica,
    SilentReplica,
    install_byzantine,
    silence_node,
)
from repro.messages.base import SignedPayload
from repro.messages.ezbft import SpecOrder, SpecReply

from helpers import DeliveryLog, lan_cluster


def test_install_byzantine_swaps_replica_object():
    cluster = lan_cluster()
    original = cluster.replicas["r1"]
    swapped = install_byzantine(cluster, "r1", SilentReplica)
    assert cluster.replicas["r1"] is swapped
    assert swapped is not original
    assert isinstance(swapped, SilentReplica)
    # Same signing identity: the byzantine replica can still sign as r1.
    assert swapped.keypair is original.keypair


def test_silent_replica_never_responds():
    cluster = lan_cluster()
    install_byzantine(cluster, "r1", SilentReplica)
    client = cluster.add_client("c0", "local", target_replica="r0")
    client.submit(client.next_command("put", "k", "v"))
    cluster.run_until_idle()
    byz = cluster.replicas["r1"]
    assert byz.stats["spec_ordered"] == 0
    assert byz.stats["led"] == 0


def test_equivocating_leader_sends_conflicting_signed_orders():
    cluster = lan_cluster()
    byz = install_byzantine(cluster, "r1", EquivocatingLeaderReplica)
    seen = {}
    for rid in ("r0", "r2", "r3"):
        replica = cluster.replicas[rid]
        original = replica.on_message

        def tracer(sender, message, rid=rid, original=original):
            if isinstance(message, SignedPayload) and \
                    isinstance(message.payload, SpecOrder):
                seen[rid] = message.payload_digest()
            original(sender, message)

        cluster.network.set_handler(rid, tracer)
    client = cluster.add_client("c0", "local", target_replica="r1")
    client.submit(client.next_command("put", "k", "v"))
    cluster.run(until=5.0)
    # At least two distinct SPECORDER digests were distributed.
    assert len(set(seen.values())) >= 2


def test_dep_suppressor_reports_empty_deps():
    cluster = lan_cluster()
    install_byzantine(cluster, "r2", DepSuppressingReplica)
    client = cluster.add_client("c0", "local", target_replica="r0")
    replies = []
    original = client.on_message

    def tracer(sender, message):
        if isinstance(message, SignedPayload) and \
                isinstance(message.payload, SpecReply):
            replies.append(message.payload)
        original(sender, message)

    cluster.network.set_handler("c0", tracer)
    # Seed interfering history so honest replicas WOULD report deps.
    client.submit(client.next_command("put", "hot", 1))
    cluster.run_until_idle()
    client.submit(client.next_command("put", "hot", 2))
    cluster.run_until_idle()
    by_replica = {r.replica: r for r in replies
                  if r.timestamp == 2}
    assert by_replica["r2"].deps == ()       # the lie
    assert by_replica["r2"].seq == 1
    assert by_replica["r0"].deps != ()       # honest replicas report


def test_corrupt_result_is_detectable_in_replies():
    cluster = lan_cluster()
    install_byzantine(cluster, "r2", CorruptResultReplica)
    client = cluster.add_client("c0", "local", target_replica="r0")
    replies = []
    original = client.on_message

    def tracer(sender, message):
        if isinstance(message, SignedPayload) and \
                isinstance(message.payload, SpecReply):
            replies.append(message.payload)
        original(sender, message)

    cluster.network.set_handler("c0", tracer)
    client.submit(client.next_command("put", "k", "v"))
    cluster.run_until_idle()
    results = {r.replica: r.result for r in replies}
    assert results["r2"] == "##corrupt##"
    assert results["r0"] == "OK"


def test_silence_node_works_for_any_protocol():
    cluster = lan_cluster("pbft")
    silence_node(cluster, "r3")
    log = DeliveryLog()
    client = cluster.add_client("c0", "local",
                                on_delivery=log.hook("c0"))
    client.submit(client.next_command("put", "k", "v"))
    cluster.run_until_idle()
    assert log.results == ["OK"]  # 2f+1 correct replicas suffice


def test_byzantine_cannot_forge_other_replicas_signatures():
    """The central crypto assumption: a byzantine replica object has no
    access to other nodes' keys, so messages it fabricates in their name
    fail verification."""
    cluster = lan_cluster()
    byz = install_byzantine(cluster, "r1", SilentReplica)
    from repro.crypto.digest import digest
    from repro.messages.ezbft import StartOwnerChange

    forged_payload = StartOwnerChange(sender="r0", suspect="r3",
                                      owner_number=3)
    # Signed with r1's key but claiming to be from r0:
    forged = SignedPayload.create(forged_payload, byz.keypair)
    victim = cluster.replicas["r2"]
    victim.on_message("r0", SignedPayload(
        payload=forged_payload, signature=forged.signature))
    cluster.run_until_idle()
    # The forgery is dropped: r1's tag does not verify as r0's...
    assert victim.stats["invalid_messages"] >= 0
    # ...and no vote was recorded for the fabricated suspicion.
    assert ("r3", 3) not in victim.owner_changes._votes
