"""repro.netem: link models, profiles, token bucket, the shaper seam
on the simulator, chaos fault events, spec round-trips, determinism,
and the validation satellite (schedule typos caught at validate time).
"""

import json

import pytest

from repro.errors import ConfigurationError
from repro.netem import (
    LinkModel,
    LinkRule,
    NetemProfile,
    LinkShaper,
    TokenBucket,
)
from repro.scenario import (
    BandwidthCap,
    ClientChurn,
    Jitter,
    LatencyShift,
    PacketLoss,
    Partition,
    Reorder,
    Scenario,
    ScenarioRunner,
    WorkloadSpec,
    dumps_spec,
    loads_spec,
    preset,
)


def _netem_scenario(profile, seed=3, **overrides) -> Scenario:
    base = dict(
        name="netem-test",
        protocol="ezbft",
        replica_regions=("local",) * 4,
        latency="local",
        netem=profile,
        workload=WorkloadSpec(mode="closed", clients_per_region=1,
                              requests_per_client=5),
        seed=seed,
        slow_path_timeout=250.0,
        retry_timeout=1500.0,
        suspicion_timeout=60_000.0,
        view_change_timeout=60_000.0,
    )
    base.update(overrides)
    return Scenario(**base)


# ----------------------------------------------------------------------
# LinkModel / NetemProfile
# ----------------------------------------------------------------------
def test_link_model_noop_detection():
    assert LinkModel().is_noop
    assert not LinkModel(delay_ms=1.0).is_noop
    assert not LinkModel(loss=0.1).is_noop
    assert not LinkModel(rate_kbps=100.0).is_noop


def test_link_model_validation_names_field():
    with pytest.raises(ConfigurationError, match="loss"):
        LinkModel(loss=1.5).validate()
    with pytest.raises(ConfigurationError, match="delay_ms"):
        LinkModel(delay_ms=-1.0).validate()
    with pytest.raises(ConfigurationError, match="burst_bytes"):
        LinkModel(burst_bytes=0).validate()


def test_profile_resolution_last_matching_rule_wins():
    profile = NetemProfile(
        default=LinkModel(delay_ms=1.0),
        rules=(
            LinkRule(src="*", dst="*", model=LinkModel(delay_ms=2.0)),
            LinkRule(src="r0", dst="r1",
                     model=LinkModel(delay_ms=9.0)),
        ))
    region_of = {"r0": "virginia", "r1": "tokyo"}.get
    assert profile.resolve("r0", "r1", region_of).delay_ms == 9.0
    assert profile.resolve("r1", "r0", region_of).delay_ms == 2.0


def test_profile_rules_match_regions():
    profile = NetemProfile(rules=(
        LinkRule(src="virginia", dst="*",
                 model=LinkModel(loss=0.5)),))
    region_of = {"r0": "virginia", "r1": "tokyo"}.get
    assert profile.resolve("r0", "r1", region_of).loss == 0.5
    assert profile.resolve("r1", "r0", region_of).loss == 0.0


def test_profile_validate_names_unknown_endpoint():
    profile = NetemProfile(rules=(
        LinkRule(src="atlantis", dst="*", model=LinkModel()),))
    with pytest.raises(ConfigurationError,
                       match=r"rules\[0\].src.*atlantis"):
        profile.validate(known_tokens={"virginia", "r0"})
    # client ids and the wildcard always pass
    NetemProfile(rules=(
        LinkRule(src="c3", dst="*", model=LinkModel()),)) \
        .validate(known_tokens={"virginia"})


# ----------------------------------------------------------------------
# TokenBucket
# ----------------------------------------------------------------------
def test_token_bucket_burst_then_serialization():
    # 8 kbit/s = 1 byte/ms; 10 bytes of burst credit.
    bucket = TokenBucket(rate_kbps=8.0, burst_bytes=10)
    assert bucket.consume(10, now_ms=0.0) == 0.0       # burst
    assert bucket.consume(10, now_ms=0.0) == 10.0      # queue
    assert bucket.consume(10, now_ms=0.0) == 20.0      # deeper queue
    # 30ms later the debt is paid and credit is full again
    assert bucket.consume(10, now_ms=100.0) == 0.0


def test_token_bucket_refill_caps_at_burst():
    bucket = TokenBucket(rate_kbps=8.0, burst_bytes=10)
    bucket.consume(10, now_ms=0.0)
    # A long idle period must not accumulate unbounded credit.
    assert bucket.consume(20, now_ms=10_000.0) == 10.0


# ----------------------------------------------------------------------
# LinkShaper
# ----------------------------------------------------------------------
def test_shaper_noop_passthrough():
    shaper = LinkShaper()
    assert shaper.plan("a", "b", 100, 0.0) == (0.0,)
    assert shaper.frames_shaped == 0


def test_shaper_loss_drops_and_counts():
    shaper = LinkShaper(NetemProfile(default=LinkModel(loss=1.0)))
    assert shaper.plan("a", "b", 100, 0.0) == ()
    assert shaper.frames_dropped == 1


def test_shaper_duplicate_and_reorder():
    shaper = LinkShaper(NetemProfile(default=LinkModel(
        delay_ms=5.0, duplicate=1.0)))
    plan = shaper.plan("a", "b", 100, 0.0)
    assert len(plan) == 2 and plan[0] == plan[1] == 5.0
    shaper = LinkShaper(NetemProfile(default=LinkModel(
        reorder=1.0, reorder_extra_ms=7.0)))
    assert shaper.plan("a", "b", 100, 0.0) == (7.0,)
    assert shaper.frames_reordered == 1


def test_shaper_patch_overlays_and_delay_scale():
    shaper = LinkShaper(NetemProfile(default=LinkModel(delay_ms=10.0)))
    shaper.patch("*", "*", loss=0.25)
    model = shaper.resolve("a", "b")
    assert model.loss == 0.25 and model.delay_ms == 10.0  # merged
    shaper.set_delay_scale(2.0)
    assert shaper.resolve("a", "b").delay_ms == 20.0
    shaper.set_delay_scale(1.0)
    assert shaper.resolve("a", "b").delay_ms == 10.0
    with pytest.raises(ConfigurationError, match="warp_factor"):
        shaper.patch("*", "*", warp_factor=9.0)
    with pytest.raises(ConfigurationError, match="loss"):
        shaper.patch("*", "*", loss=3.0)


def test_shaper_bandwidth_cap_queues():
    shaper = LinkShaper(NetemProfile(default=LinkModel(
        rate_kbps=8.0, burst_bytes=100)))
    assert shaper.plan("a", "b", 100, 0.0) == (0.0,)
    delay = shaper.plan("a", "b", 100, 0.0)[0]
    assert delay == pytest.approx(100.0)  # 100 bytes at 1 byte/ms


# ----------------------------------------------------------------------
# Simulator integration
# ----------------------------------------------------------------------
def test_sim_netem_delay_raises_latency():
    plain = ScenarioRunner().run(_netem_scenario(None))
    shaped = ScenarioRunner().run(_netem_scenario(
        NetemProfile(default=LinkModel(delay_ms=25.0))))
    # Every protocol hop gains 25ms each way; client latency must rise
    # by well over one round trip.
    assert shaped.latency.p50 > plain.latency.p50 + 50.0
    assert shaped.network["netem_frames_shaped"] > 0


def test_sim_netem_total_loss_on_one_link_still_commits():
    # r3 hears nothing: the fast path (all 4) collapses but the 2f+1
    # slow path keeps committing.
    profile = NetemProfile(rules=(
        LinkRule(src="*", dst="r3", model=LinkModel(loss=1.0)),))
    report = ScenarioRunner().run(_netem_scenario(profile))
    assert report.delivered == 5
    assert report.fast_path_ratio < 1.0
    assert report.network["netem_frames_dropped"] > 0


def test_sim_netem_chaos_faults_retarget_live_shaper():
    scenario = _netem_scenario(
        NetemProfile(default=LinkModel(delay_ms=2.0)),
        workload=WorkloadSpec(mode="open", rate_per_client=40.0,
                              client_regions=("local",)),
        duration_ms=600.0,
        faults=(PacketLoss(at_ms=100.0, probability=0.2),
                Jitter(at_ms=150.0, jitter_ms=3.0),
                BandwidthCap(at_ms=200.0, rate_kbps=512.0,
                             src="r0", dst="r1"),
                Reorder(at_ms=250.0, probability=0.3, extra_ms=2.0),
                LatencyShift(at_ms=300.0, factor=1.5)),
    )
    report, cluster = ScenarioRunner().run_with_cluster(scenario)
    assert [e["event"] for e in report.fault_log] == [
        "PacketLoss", "Jitter", "BandwidthCap", "Reorder",
        "LatencyShift"]
    shaper = cluster.network.shaper
    model = shaper.resolve("r0", "r1")
    assert model.loss == 0.2
    assert model.jitter_ms == 3.0
    assert model.rate_kbps == 512.0
    assert model.reorder == 0.3
    assert model.delay_ms == pytest.approx(2.0 * 1.5)
    # The cap patch was link-scoped: the reverse direction is uncapped.
    assert shaper.resolve("r1", "r0").rate_kbps == 0.0


def test_sim_chaos_faults_without_profile_materialize_shaper():
    scenario = _netem_scenario(
        None, faults=(PacketLoss(at_ms=1.0, probability=0.05),))
    report, cluster = ScenarioRunner().run_with_cluster(scenario)
    assert cluster.network.shaper is not None
    assert cluster.network.shaper.resolve("r0", "r1").loss == 0.05
    assert report.delivered == 5


# ----------------------------------------------------------------------
# Determinism (satellite): seeded sim netem runs are byte-identical
# ----------------------------------------------------------------------
def _canonical(report) -> str:
    data = report.to_dict()
    assert data.pop("wall_seconds") >= 0.0
    return json.dumps(data, sort_keys=False, allow_nan=False)


def test_seeded_netem_run_is_byte_identical():
    profile = NetemProfile(default=LinkModel(
        delay_ms=5.0, jitter_ms=2.0, loss=0.05, duplicate=0.05,
        reorder=0.2, reorder_extra_ms=2.0))
    scenario = _netem_scenario(profile, seed=17)
    first = ScenarioRunner().run(scenario)
    second = ScenarioRunner().run(scenario)
    assert _canonical(first) == _canonical(second)
    # ...and the stream actually exercised the chaos paths
    assert first.network["netem_frames_shaped"] > 0


def test_lossy_wan_preset_is_byte_identical_and_different_seed_differs():
    first = ScenarioRunner().run(preset("lossy-wan"))
    second = ScenarioRunner().run(preset("lossy-wan"))
    assert _canonical(first) == _canonical(second)
    other = ScenarioRunner().run(
        preset("lossy-wan").with_overrides(seed=99))
    assert other.delivered == first.delivered  # same shape
    assert _canonical(other) != _canonical(first)  # different stream


# ----------------------------------------------------------------------
# Spec round-trips (netem + hosts)
# ----------------------------------------------------------------------
@pytest.mark.parametrize("fmt", ("json", "toml"))
def test_netem_profile_round_trips(fmt):
    scenario = _netem_scenario(NetemProfile(
        default=LinkModel(delay_ms=12.0, jitter_ms=4.0, loss=0.01),
        rules=(LinkRule(src="local", dst="r2",
                        model=LinkModel(delay_ms=30.0,
                                        rate_kbps=256.0)),)))
    text = dumps_spec(scenario, fmt)
    assert loads_spec(text, fmt) == scenario


def test_hosts_round_trip_and_validation():
    scenario = _netem_scenario(
        None, hosts={"r3": "127.0.0.1:45901"}, backends=("tcp",))
    loaded = loads_spec(dumps_spec(scenario, "json"), "json")
    assert loaded == scenario
    with pytest.raises(ConfigurationError, match="r9"):
        _netem_scenario(None, hosts={"r9": "x:1"}).validate()
    with pytest.raises(ConfigurationError, match="host:port"):
        _netem_scenario(None, hosts={"r3": "nope"}).validate()
    with pytest.raises(ConfigurationError, match="every replica"):
        _netem_scenario(None, hosts={
            f"r{i}": f"h:{4000 + i}" for i in range(4)}).validate()


def test_netem_loader_errors_name_keys():
    with pytest.raises(ConfigurationError, match="lossy"):
        loads_spec(json.dumps({"scenario": {
            "name": "x", "netem": {"default": {"lossy": 0.5}}}}),
            "json")
    with pytest.raises(ConfigurationError, match="rules"):
        loads_spec(json.dumps({"scenario": {
            "name": "x", "netem": {"rules": {"src": "a"}}}}), "json")


def test_netem_validation_runs_at_load_time():
    with pytest.raises(ConfigurationError, match="loss"):
        loads_spec(json.dumps({"scenario": {
            "name": "x", "netem": {"default": {"loss": 2.0}}}}),
            "json")


def test_example_spec_file_matches_lossy_wan_preset():
    # The shipped worked example (README + CI) must stay in sync with
    # the preset it documents.
    import os

    from repro.scenario import load_spec

    path = os.path.join(os.path.dirname(__file__), os.pardir,
                        "examples", "specs", "lossy_wan.json")
    assert load_spec(path) == preset("lossy-wan")


# ----------------------------------------------------------------------
# Validation satellite: schedule typos fail at validate time, named
# ----------------------------------------------------------------------
def test_partition_naming_unknown_replica_rejected_at_validate():
    scenario = _netem_scenario(None, faults=(
        Partition(at_ms=1.0, sides=(("r9",), ("r0", "r1"))),))
    with pytest.raises(ConfigurationError,
                       match=r"faults\[0\].sides\[0\].*r9"):
        scenario.validate()
    # client ids are legal partition members
    _netem_scenario(None, faults=(
        Partition(at_ms=1.0, sides=(("c0",), ("r0",))),)).validate()


def test_client_churn_unknown_region_rejected_at_validate():
    scenario = _netem_scenario(None, faults=(
        ClientChurn(at_ms=1.0, add=2, region="atlantis"),))
    with pytest.raises(ConfigurationError,
                       match=r"faults\[0\].region.*atlantis"):
        scenario.validate()


def test_netem_rule_unknown_endpoint_rejected_at_validate():
    scenario = _netem_scenario(NetemProfile(rules=(
        LinkRule(src="mars", dst="*", model=LinkModel()),)))
    with pytest.raises(ConfigurationError, match="mars"):
        scenario.validate()


def test_netem_fault_unknown_endpoint_rejected_at_validate():
    # A typoed chaos-event token would otherwise be a silent no-op
    # while the fault log claimed the event fired.
    scenario = _netem_scenario(None, faults=(
        PacketLoss(at_ms=1.0, probability=0.1, src="virgina"),))
    with pytest.raises(ConfigurationError,
                       match=r"faults\[0\].src.*virgina"):
        scenario.validate()
    _netem_scenario(None, faults=(
        PacketLoss(at_ms=1.0, probability=0.1, src="r0",
                   dst="c1"),)).validate()  # ids + clients are fine


# ----------------------------------------------------------------------
# Sweeping over whole profiles (python-built grids)
# ----------------------------------------------------------------------
def test_sweep_over_netem_profiles():
    from repro.sweep import SweepRunner, SweepSpec

    clean = None
    lossy = NetemProfile(default=LinkModel(delay_ms=10.0))
    spec = SweepSpec(base=_netem_scenario(clean),
                     grid={"netem": (clean, lossy)})
    report = SweepRunner().run(spec)
    assert len(report.cells) == 2
    slow = report.cells[1].report
    fast = report.cells[0].report
    assert slow.latency.p50 > fast.latency.p50
