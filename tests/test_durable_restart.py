"""kill -9 realism: a serve-hosted replica is SIGKILLed mid-run,
restarted from its ``--data-dir``, and rejoins the cluster.

The scenario process hosts r0..r2 plus the clients; a separate
``repro serve`` child hosts r3 with durability on.  The fault schedule
SIGKILLs that child (no drain, no flush) while the workload is in
flight and respawns it from the same data directory.  The respawned
process loads its latest snapshot, replays the WAL suffix, and state
transfer covers anything newer -- so every command still delivers
exactly once and ``/healthz`` returns to ``ok``.
"""

import asyncio
import json
import os
import socket

from repro.obs import http_request
from repro.scenario import (
    KillProcess,
    RestartProcess,
    Scenario,
    ScenarioRunner,
    ServeProcess,
    ServeProcessManager,
    WorkloadSpec,
    save_spec,
)

SRC = os.path.join(os.path.dirname(os.path.dirname(
    os.path.abspath(__file__))), "src")


def _free_port() -> int:
    with socket.socket() as sock:
        sock.bind(("127.0.0.1", 0))
        return sock.getsockname()[1]


def _scenario(replica_port: int, obs_port: int) -> Scenario:
    return Scenario(
        name="durable-kill9",
        protocol="ezbft",
        replica_regions=("local",) * 4,
        latency="local",
        hosts={"r3": f"127.0.0.1:{replica_port}"},
        obs={"r3": f"127.0.0.1:{obs_port}"},
        workload=WorkloadSpec(mode="closed", clients_per_region=1,
                              requests_per_client=8,
                              think_time_ms=20.0),
        # SIGKILL the serve process mid-wave; respawn it from the same
        # data dir while traffic is still flowing.  n=4 ezBFT rides out
        # the one failure on the slow path in between.
        faults=(KillProcess(at_ms=400.0, replica="r3"),
                RestartProcess(at_ms=1400.0, replica="r3")),
        seed=21,
        slow_path_timeout=300.0,
        retry_timeout=2000.0,
        suspicion_timeout=30_000.0,
        view_change_timeout=30_000.0,
        backends=("tcp",),
        durable=True,
    )


def _healthz(port: int) -> dict:
    status, body = asyncio.run(
        http_request("127.0.0.1", port, "/healthz"))
    assert status == 200
    return json.loads(body)


def test_kill9_restart_recovers_and_delivers_exactly_once(tmp_path):
    replica_port, obs_port = _free_port(), _free_port()
    scenario = _scenario(replica_port, obs_port)
    spec_path = tmp_path / "durable-kill9.json"
    save_spec(scenario, str(spec_path))

    serve_data = str(tmp_path / "serve-data")
    env = {"PYTHONPATH": SRC + os.pathsep + os.environ.get(
        "PYTHONPATH", "")}
    process = ServeProcess(
        str(spec_path), ("r3",), data_dir=serve_data,
        log_path=str(tmp_path / "serve.log"), extra_env=env)
    manager = ServeProcessManager()
    manager.register(process)
    process.start()
    first_pid = process.pid
    try:
        assert _healthz(obs_port)["status"] == "ok"

        report = ScenarioRunner(
            backend="tcp", tcp_timeout_s=60.0,
            process_manager=manager,
            data_dir=str(tmp_path / "runner-data"),
        ).run(scenario)

        # Both process faults were dispatched; the respawn really made
        # a new process.
        assert [e["event"] for e in report.fault_log] == \
            ["KillProcess", "RestartProcess"]
        assert report.network.get("control_errors") == 0
        assert process.alive
        assert process.pid != first_pid

        # Exactly once: every request delivered, none twice (delivered
        # counts unique command idents on the client side).
        assert report.delivered == 8

        # The respawned process recovered from disk and is healthy.
        after = _healthz(obs_port)
        assert after["status"] == "ok"
        assert after["crashed"] is False

        # The data dir holds the durable artifacts the restart used.
        names = os.listdir(os.path.join(serve_data, "r3"))
        assert any(n.startswith("wal-") for n in names)
    finally:
        manager.terminate_all()
