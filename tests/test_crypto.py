"""Unit tests for digests, signatures and authenticators."""

import pytest

from repro.crypto.authenticator import (
    make_authenticator,
    verify_authenticator,
)
from repro.crypto.digest import canonical_bytes, digest
from repro.crypto.keys import KeyPair, KeyRegistry
from repro.crypto.signatures import Signature, is_valid, sign, verify
from repro.errors import (
    InvalidSignatureError,
    SerializationError,
    UnknownSignerError,
)


# ----------------------------------------------------------------------
# Canonical digests
# ----------------------------------------------------------------------
def test_digest_independent_of_dict_order():
    assert digest({"a": 1, "b": 2}) == digest({"b": 2, "a": 1})


def test_digest_independent_of_set_order():
    assert digest({"s": {3, 1, 2}}) == digest({"s": {2, 3, 1}})


def test_digest_distinguishes_values():
    assert digest({"a": 1}) != digest({"a": 2})


def test_tuple_and_list_equivalent():
    assert digest((1, 2, 3)) == digest([1, 2, 3])


def test_bytes_canonicalized():
    assert digest(b"\x01\x02") == digest(b"\x01\x02")
    assert digest(b"\x01") != digest(b"\x02")


def test_nested_structures():
    value = {"x": [1, {"y": (2, 3)}], "z": None}
    assert isinstance(canonical_bytes(value), bytes)


def test_non_string_dict_keys_rejected():
    with pytest.raises(SerializationError):
        canonical_bytes({1: "a"})


def test_unserializable_type_rejected():
    with pytest.raises(SerializationError):
        canonical_bytes(object())


def test_object_with_to_wire_is_accepted():
    class Wired:
        def to_wire(self):
            return {"v": 42}

    assert digest(Wired()) == digest({"v": 42})


# ----------------------------------------------------------------------
# Keys
# ----------------------------------------------------------------------
def test_deterministic_keypair_from_seed():
    a = KeyPair.generate("n1", seed=b"s")
    b = KeyPair.generate("n1", seed=b"s")
    assert a.secret == b.secret


def test_different_nodes_different_keys():
    a = KeyPair.generate("n1", seed=b"s")
    b = KeyPair.generate("n2", seed=b"s")
    assert a.secret != b.secret


def test_random_keypair_without_seed():
    a = KeyPair.generate("n1")
    b = KeyPair.generate("n1")
    assert a.secret != b.secret


# ----------------------------------------------------------------------
# Signatures
# ----------------------------------------------------------------------
@pytest.fixture()
def registry():
    reg = KeyRegistry()
    reg.create("alice", seed=b"t")
    reg.create("bob", seed=b"t")
    return reg


def test_sign_verify_roundtrip(registry):
    keypair = KeyPair.generate("alice", seed=b"t")
    sig = sign({"msg": "hello"}, keypair)
    verify({"msg": "hello"}, sig, registry)  # no raise


def test_tampered_value_fails(registry):
    keypair = KeyPair.generate("alice", seed=b"t")
    sig = sign({"msg": "hello"}, keypair)
    with pytest.raises(InvalidSignatureError):
        verify({"msg": "HELLO"}, sig, registry)


def test_wrong_signer_claim_fails(registry):
    keypair = KeyPair.generate("alice", seed=b"t")
    sig = sign({"msg": "hello"}, keypair)
    forged = Signature(signer="bob", tag=sig.tag)
    with pytest.raises(InvalidSignatureError):
        verify({"msg": "hello"}, forged, registry)


def test_unknown_signer_raises(registry):
    sig = Signature(signer="mallory", tag="00" * 32)
    with pytest.raises(UnknownSignerError):
        verify({"msg": "x"}, sig, registry)


def test_is_valid_boolean_form(registry):
    keypair = KeyPair.generate("alice", seed=b"t")
    sig = sign("data", keypair)
    assert is_valid("data", sig, registry)
    assert not is_valid("other", sig, registry)


def test_signature_wire_roundtrip(registry):
    keypair = KeyPair.generate("alice", seed=b"t")
    sig = sign("data", keypair)
    again = Signature.from_wire(sig.to_wire())
    assert again == sig


# ----------------------------------------------------------------------
# Authenticators
# ----------------------------------------------------------------------
def test_authenticator_verifies_per_receiver(registry):
    keypair = KeyPair.generate("alice", seed=b"t")
    auth = make_authenticator("payload", keypair, ["bob", "carol"])
    verify_authenticator("payload", auth, "bob", registry)  # no raise


def test_authenticator_missing_receiver(registry):
    keypair = KeyPair.generate("alice", seed=b"t")
    auth = make_authenticator("payload", keypair, ["bob"])
    with pytest.raises(InvalidSignatureError):
        verify_authenticator("payload", auth, "carol", registry)


def test_authenticator_tamper_detected(registry):
    keypair = KeyPair.generate("alice", seed=b"t")
    auth = make_authenticator("payload", keypair, ["bob"])
    with pytest.raises(InvalidSignatureError):
        verify_authenticator("other", auth, "bob", registry)


def test_authenticator_wire_roundtrip(registry):
    from repro.crypto.authenticator import Authenticator

    keypair = KeyPair.generate("alice", seed=b"t")
    auth = make_authenticator("payload", keypair, ["bob"])
    again = Authenticator.from_wire(auth.to_wire())
    assert again == auth
