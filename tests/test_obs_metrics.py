"""repro.obs.metrics: registry semantics and histogram bucket math.

The exposition/golden-file pins live in test_obs_http.py; this file
checks the arithmetic those surfaces rely on -- bucket assignment,
cumulative counts, sum/count, label-child identity, idempotent
re-registration -- with hand-computed expectations.
"""

import pytest

from repro.errors import ConfigurationError
from repro.obs import MetricsRegistry
from repro.obs.metrics import DEFAULT_LATENCY_BUCKETS_MS


def test_counter_inc_and_labels():
    registry = MetricsRegistry()
    counter = registry.counter("hits", "Hits", labels=("path",))
    counter.labels("fast").inc()
    counter.labels("fast").inc(2)
    counter.labels("slow").inc()
    samples = {tuple(s["labels"].values()): s["value"]
               for s in counter.snapshot_samples()}
    assert samples == {("fast",): 3, ("slow",): 1}
    # The same label values resolve to the same child object.
    assert counter.labels("fast") is counter.labels("fast")


def test_counter_rejects_negative_increment():
    registry = MetricsRegistry()
    counter = registry.counter("hits", "Hits")
    with pytest.raises(ConfigurationError):
        counter.labels().inc(-1)


def test_gauge_set_inc_dec():
    registry = MetricsRegistry()
    gauge = registry.gauge("depth", "Queue depth")
    child = gauge.labels()
    child.set(10)
    child.inc(5)
    child.dec(3)
    (sample,) = gauge.snapshot_samples()
    assert sample["value"] == 12


def test_histogram_bucket_assignment():
    registry = MetricsRegistry()
    hist = registry.histogram("lat", "Latency", unit="ms",
                              buckets=(1.0, 5.0, 25.0))
    child = hist.labels()
    # 0.5 -> le=1; 1.0 -> le=1 (boundaries inclusive); 3 -> le=5;
    # 25.0 -> le=25; 100 -> +Inf.
    for value in (0.5, 1.0, 3.0, 25.0, 100.0):
        child.observe(value)
    cumulative = dict(child.cumulative())
    assert cumulative == {"1": 2, "5": 3, "25": 4, "+Inf": 5}
    assert child.count == 5
    assert child.sum == pytest.approx(129.5)


def test_histogram_cumulative_is_monotone_on_default_buckets():
    registry = MetricsRegistry()
    hist = registry.histogram("lat", "Latency", unit="ms")
    child = hist.labels()
    for value in (0.1, 2.0, 2.5, 9.9, 10.0, 10.1, 4000.0, 9999.0):
        child.observe(value)
    cumulative = child.cumulative()
    counts = [count for _, count in cumulative]
    assert counts == sorted(counts)
    assert cumulative[-1] == ("+Inf", 8)
    # One boundary entry per default bucket plus +Inf.
    assert len(cumulative) == len(DEFAULT_LATENCY_BUCKETS_MS) + 1


def test_histogram_rejects_unsorted_buckets():
    registry = MetricsRegistry()
    with pytest.raises(ConfigurationError):
        registry.histogram("lat", "Latency", buckets=(5.0, 1.0))


def test_reregistration_is_idempotent_but_typed():
    registry = MetricsRegistry()
    first = registry.counter("hits", "Hits", labels=("path",))
    again = registry.counter("hits", "Hits", labels=("path",))
    assert first is again
    with pytest.raises(ConfigurationError):
        registry.gauge("hits", "Hits")  # same name, different type
    with pytest.raises(ConfigurationError):
        registry.counter("hits", "Hits", labels=("other",))


def test_collectors_refresh_before_snapshot():
    registry = MetricsRegistry()
    gauge = registry.gauge("uptime", "Uptime", unit="ms")
    ticks = {"n": 0}

    def refresh():
        ticks["n"] += 1
        gauge.labels().set(ticks["n"] * 100)

    registry.register_collector(refresh)
    snap = registry.snapshot()
    (family,) = [f for f in snap["metrics"] if f["name"] == "uptime"]
    assert family["samples"][0]["value"] == 100
    registry.to_prometheus()
    snap = registry.snapshot()
    assert ticks["n"] == 3  # one refresh per collect surface


def test_snapshot_families_sorted_and_schema_keyed():
    registry = MetricsRegistry()
    registry.counter("zzz", "Z")
    registry.gauge("aaa", "A")
    snap = registry.snapshot()
    names = [f["name"] for f in snap["metrics"]]
    assert names == sorted(names)
    for family in snap["metrics"]:
        assert set(family) == {"name", "type", "help", "unit",
                               "label_names", "samples"}
