"""Public API surface tests: everything README documents must exist,
be importable from the top-level package, and carry docstrings."""

import inspect

import pytest

import repro


def test_version():
    assert repro.__version__


@pytest.mark.parametrize("name", repro.__all__)
def test_all_exports_exist(name):
    assert hasattr(repro, name), name


@pytest.mark.parametrize("name", repro.__all__)
def test_exported_objects_documented(name):
    obj = getattr(repro, name)
    if inspect.isclass(obj) or inspect.isfunction(obj):
        assert obj.__doc__, f"{name} lacks a docstring"


def test_readme_quickstart_works():
    """The exact snippet from README.md."""
    from repro import EXPERIMENT1, build_cluster

    cluster = build_cluster(
        "ezbft",
        replica_regions=["virginia", "tokyo", "mumbai", "sydney"],
        latency=EXPERIMENT1)
    client = cluster.add_client("alice", region="tokyo")
    deliveries = []
    client.on_delivery = (lambda cmd, result, latency, path:
                          deliveries.append((result, latency, path)))
    client.submit(client.next_command("put", "greeting", "hello"))
    cluster.run_until_idle()
    result, latency, path = deliveries[0]
    assert result == "OK"
    assert path == "fast"
    assert latency == pytest.approx(151, abs=10)


def test_module_docstring_quickstart_matches():
    assert "build_cluster" in repro.__doc__


def test_protocols_constant():
    assert set(repro.PROTOCOLS) == {"ezbft", "pbft", "zyzzyva", "fab"}


def test_all_subpackages_importable():
    import importlib

    for module in [
        "repro.sim", "repro.sim.events", "repro.sim.latency",
        "repro.sim.network", "repro.crypto", "repro.messages",
        "repro.statemachine", "repro.graph", "repro.core",
        "repro.core.owner_change", "repro.protocols",
        "repro.protocols.pbft", "repro.protocols.zyzzyva",
        "repro.protocols.fab", "repro.byzantine", "repro.cluster",
        "repro.workload", "repro.transport", "repro.types",
        "repro.config", "repro.errors",
    ]:
        mod = importlib.import_module(module)
        assert mod.__doc__, f"{module} lacks a module docstring"


def test_error_hierarchy_rooted():
    from repro import errors

    for name in dir(errors):
        obj = getattr(errors, name)
        if inspect.isclass(obj) and issubclass(obj, Exception) \
                and obj is not errors.ReproError:
            assert issubclass(obj, errors.ReproError), name
