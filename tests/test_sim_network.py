"""Unit tests for the simulated WAN (SimNetwork)."""

import pytest

from repro.errors import ConfigurationError, TransportError
from repro.sim.events import Simulator
from repro.sim.latency import uniform_matrix
from repro.sim.network import CpuModel, NetworkConditions, SimNetwork


class _Msg:
    cpu_cost_units = 1


def make_net(one_way=10.0, cpu=None, conditions=None, regions=("a", "b")):
    sim = Simulator()
    matrix = uniform_matrix(regions, one_way_ms=one_way)
    net = SimNetwork(sim, matrix, cpu=cpu or CpuModel.free(),
                     conditions=conditions)
    return sim, net


def test_delivery_after_propagation():
    sim, net = make_net(one_way=10.0)
    received = []
    net.register("n1", "a", lambda s, m: received.append((sim.now, s, m)))
    net.register("n2", "b", lambda s, m: None)
    msg = _Msg()
    net.send("n2", "n1", msg)
    sim.run()
    assert len(received) == 1
    now, sender, delivered = received[0]
    assert now == pytest.approx(10.0)
    assert sender == "n2"
    assert delivered is msg


def test_intra_region_latency_used():
    sim, net = make_net(one_way=10.0)
    times = []
    net.register("n1", "a", lambda s, m: times.append(sim.now))
    net.register("n2", "a", lambda s, m: None)
    net.send("n2", "n1", _Msg())
    sim.run()
    assert times[0] == pytest.approx(net.latency.intra_region_ms)


def test_duplicate_registration_rejected():
    _, net = make_net()
    net.register("n1", "a", lambda s, m: None)
    with pytest.raises(ConfigurationError):
        net.register("n1", "a", lambda s, m: None)


def test_unknown_region_rejected():
    _, net = make_net()
    with pytest.raises(ConfigurationError):
        net.register("n1", "nowhere", lambda s, m: None)


def test_send_to_unknown_node_raises():
    _, net = make_net()
    net.register("n1", "a", lambda s, m: None)
    with pytest.raises(TransportError):
        net.send("n1", "ghost", _Msg())


def test_cpu_queueing_serializes_processing():
    """Two messages arriving together are processed back to back."""
    sim, net = make_net(one_way=10.0, cpu=CpuModel(base_ms=0.0,
                                                   per_unit_ms=5.0))
    times = []
    net.register("dst", "a", lambda s, m: times.append(sim.now))
    net.register("src", "b", lambda s, m: None)
    net.send("src", "dst", _Msg())
    net.send("src", "dst", _Msg())
    sim.run()
    # First: 10 propagation + 5 processing; second queues behind it.
    assert times[0] == pytest.approx(15.0)
    assert times[1] == pytest.approx(20.0)


def test_cpu_cost_units_scale_processing():
    class Expensive:
        cpu_cost_units = 10

    sim, net = make_net(one_way=0.0,
                        cpu=CpuModel(base_ms=0.0, per_unit_ms=1.0),
                        regions=("a",))
    times = []
    net.register("dst", "a", lambda s, m: times.append(sim.now))
    net.register("src", "a", lambda s, m: None)
    net.send("src", "dst", Expensive())
    sim.run()
    assert times[0] == pytest.approx(net.latency.intra_region_ms + 10.0)


def test_drop_probability_one_drops_everything():
    sim, net = make_net(conditions=NetworkConditions(drop_probability=1.0))
    received = []
    net.register("n1", "a", lambda s, m: received.append(m))
    net.register("n2", "b", lambda s, m: None)
    for _ in range(10):
        net.send("n2", "n1", _Msg())
    sim.run()
    assert received == []
    assert net.stats("n1")["messages_dropped"] == 10


def test_partition_blocks_directed_pair():
    sim, net = make_net()
    received = []
    net.register("n1", "a", lambda s, m: received.append(m))
    net.register("n2", "b", lambda s, m: received.append(m))
    net.conditions.partitions.add(("n2", "n1"))
    net.send("n2", "n1", _Msg())  # blocked
    net.send("n1", "n2", _Msg())  # allowed (directed partition)
    sim.run()
    assert len(received) == 1


def test_isolate_and_heal():
    sim, net = make_net()
    received = []
    net.register("n1", "a", lambda s, m: received.append(m))
    net.register("n2", "b", lambda s, m: None)
    net.isolate("n1")
    net.send("n2", "n1", _Msg())
    sim.run()
    assert received == []
    net.heal("n1")
    net.send("n2", "n1", _Msg())
    sim.run()
    assert len(received) == 1


def test_broadcast_reaches_all():
    sim, net = make_net()
    received = []
    net.register("n1", "a", lambda s, m: received.append("n1"))
    net.register("n2", "b", lambda s, m: received.append("n2"))
    net.register("src", "a", lambda s, m: None)
    net.broadcast("src", ("n1", "n2"), _Msg())
    sim.run()
    assert sorted(received) == ["n1", "n2"]


def test_set_handler_replaces_delivery_target():
    sim, net = make_net()
    first, second = [], []
    net.register("n1", "a", lambda s, m: first.append(m))
    net.register("n2", "b", lambda s, m: None)
    net.set_handler("n1", lambda s, m: second.append(m))
    net.send("n2", "n1", _Msg())
    sim.run()
    assert first == [] and len(second) == 1


def test_message_counters():
    sim, net = make_net()
    net.register("n1", "a", lambda s, m: None)
    net.register("n2", "b", lambda s, m: None)
    net.send("n2", "n1", _Msg(), size_bytes=100)
    sim.run()
    assert net.messages_sent == 1
    assert net.messages_delivered == 1
    assert net.bytes_sent == 100


def test_jitter_changes_latency_but_stays_bounded():
    sim = Simulator()
    matrix = uniform_matrix(("a", "b"), one_way_ms=100.0)
    net = SimNetwork(sim, matrix, cpu=CpuModel.free(),
                     conditions=NetworkConditions(jitter_fraction=0.1),
                     seed=7)
    times = []
    net.register("n1", "a", lambda s, m: times.append(sim.now))
    net.register("n2", "b", lambda s, m: None)
    net.send("n2", "n1", _Msg())
    sim.run()
    assert 90.0 <= times[0] <= 110.0
