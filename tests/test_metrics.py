"""Metrics collection tests."""

import math

import pytest

from repro.cluster.metrics import LatencyRecorder, summarize


def test_summarize_basic():
    summary = summarize([1.0, 2.0, 3.0, 4.0])
    assert summary.count == 4
    assert summary.mean == pytest.approx(2.5)
    assert summary.minimum == 1.0
    assert summary.maximum == 4.0


def test_summarize_percentiles():
    samples = [float(i) for i in range(1, 101)]
    summary = summarize(samples)
    assert summary.p50 == 50.0
    assert summary.p90 == 90.0
    assert summary.p99 == 99.0


def test_summarize_single_sample():
    summary = summarize([7.0])
    assert summary.p50 == summary.p99 == 7.0


def test_summarize_empty():
    summary = summarize([])
    assert summary.count == 0
    assert math.isnan(summary.mean)


def test_recorder_groups_and_samples():
    recorder = LatencyRecorder()
    recorder.record("tokyo", 100.0, "fast", now_ms=10.0)
    recorder.record("tokyo", 120.0, "slow", now_ms=20.0)
    recorder.record("sydney", 90.0, "fast", now_ms=30.0)
    assert recorder.groups() == ("sydney", "tokyo")
    assert recorder.samples("tokyo") == [100.0, 120.0]
    assert recorder.summary("sydney").count == 1
    assert recorder.overall().count == 3


def test_recorder_path_counts():
    recorder = LatencyRecorder()
    recorder.record("g", 1.0, "fast", 1.0)
    recorder.record("g", 1.0, "fast", 2.0)
    recorder.record("g", 1.0, "slow", 3.0)
    assert recorder.path_counts("g") == {"fast": 2, "slow": 1}
    assert recorder.fast_path_fraction("g") == pytest.approx(2 / 3)
    assert recorder.fast_path_fraction() == pytest.approx(2 / 3)


def test_fast_fraction_empty_is_nan():
    recorder = LatencyRecorder()
    assert math.isnan(recorder.fast_path_fraction())


def test_throughput_uses_delivery_window():
    recorder = LatencyRecorder()
    recorder.record("g", 1.0, "fast", now_ms=1000.0)
    for t in range(1, 11):
        recorder.record("g", 1.0, "fast", now_ms=1000.0 + t * 100.0)
    # 11 deliveries over a 1000ms window.
    assert recorder.throughput_per_sec() == pytest.approx(11.0, rel=0.01)


def test_throughput_explicit_window():
    recorder = LatencyRecorder()
    for t in range(10):
        recorder.record("g", 1.0, "fast", now_ms=float(t))
    assert recorder.throughput_per_sec(window_ms=1000.0) == \
        pytest.approx(10.0)


def test_throughput_zero_without_deliveries():
    recorder = LatencyRecorder()
    assert recorder.throughput_per_sec() == 0.0


# ----------------------------------------------------------------------
# Warmup exclusion and phase tagging
# ----------------------------------------------------------------------
def test_discard_first_excludes_warmup_per_group():
    recorder = LatencyRecorder(discard_first=2)
    for t in range(5):
        recorder.record("a", 10.0 + t, "fast", now_ms=float(t))
    recorder.record("b", 99.0, "slow", now_ms=10.0)
    # Group a: first 2 of 5 dropped; group b: its only sample dropped.
    assert recorder.warmup_discarded == 3
    assert len(recorder.samples("a")) == 3
    assert recorder.samples("b") == []
    assert recorder.total_delivered == 3
    # Discarded samples never reach path stats either.
    assert recorder.fast_path_fraction() == 1.0


def test_phase_tagging_slices_samples_and_paths():
    recorder = LatencyRecorder()
    recorder.begin_phase("ramp", 0.0)
    recorder.record("g", 10.0, "fast", now_ms=5.0)
    recorder.record("g", 20.0, "fast", now_ms=8.0)
    recorder.begin_phase("steady", 100.0)
    recorder.record("g", 30.0, "slow", now_ms=105.0)
    assert recorder.phases() == ("ramp", "steady")
    assert recorder.samples("g", phase="ramp") == [10.0, 20.0]
    assert recorder.samples("g", phase="steady") == [30.0]
    assert recorder.samples("g") == [10.0, 20.0, 30.0]  # aggregate
    assert recorder.delivered(phase="ramp") == 2
    assert recorder.fast_path_fraction(phase="ramp") == 1.0
    assert recorder.fast_path_fraction(phase="steady") == 0.0
    assert recorder.summary("g", phase="steady").mean == 30.0
    assert recorder.phase_window("ramp") == (0.0, 100.0)
    assert recorder.phase_window("steady") == (100.0, 105.0)


def test_implicit_main_phase_and_duplicate_phase_rejected():
    recorder = LatencyRecorder()
    recorder.record("g", 1.0, "fast", now_ms=0.0)
    assert recorder.phases() == ("main",)
    assert recorder.delivered(phase="main") == 1
    with pytest.raises(ValueError):
        recorder.begin_phase("main", 1.0)


def test_phase_throughput_uses_phase_window():
    recorder = LatencyRecorder()
    recorder.begin_phase("a", 0.0)
    for t in range(5):
        recorder.record("g", 1.0, "fast", now_ms=t * 100.0)
    recorder.begin_phase("b", 1000.0)
    recorder.record("g", 1.0, "fast", now_ms=1000.0)
    recorder.record("g", 1.0, "fast", now_ms=1500.0)
    # Phase a: 5 deliveries over its observed 400ms window.
    assert recorder.throughput_per_sec(phase="a") == \
        pytest.approx(12.5)
    assert recorder.throughput_per_sec(phase="b") == \
        pytest.approx(4.0)
