"""Metrics collection tests."""

import math

import pytest

from repro.cluster.metrics import LatencyRecorder, summarize


def test_summarize_basic():
    summary = summarize([1.0, 2.0, 3.0, 4.0])
    assert summary.count == 4
    assert summary.mean == pytest.approx(2.5)
    assert summary.minimum == 1.0
    assert summary.maximum == 4.0


def test_summarize_percentiles():
    samples = [float(i) for i in range(1, 101)]
    summary = summarize(samples)
    assert summary.p50 == 50.0
    assert summary.p90 == 90.0
    assert summary.p99 == 99.0


def test_summarize_single_sample():
    summary = summarize([7.0])
    assert summary.p50 == summary.p99 == 7.0


def test_summarize_empty():
    summary = summarize([])
    assert summary.count == 0
    assert math.isnan(summary.mean)


def test_recorder_groups_and_samples():
    recorder = LatencyRecorder()
    recorder.record("tokyo", 100.0, "fast", now_ms=10.0)
    recorder.record("tokyo", 120.0, "slow", now_ms=20.0)
    recorder.record("sydney", 90.0, "fast", now_ms=30.0)
    assert recorder.groups() == ("sydney", "tokyo")
    assert recorder.samples("tokyo") == [100.0, 120.0]
    assert recorder.summary("sydney").count == 1
    assert recorder.overall().count == 3


def test_recorder_path_counts():
    recorder = LatencyRecorder()
    recorder.record("g", 1.0, "fast", 1.0)
    recorder.record("g", 1.0, "fast", 2.0)
    recorder.record("g", 1.0, "slow", 3.0)
    assert recorder.path_counts("g") == {"fast": 2, "slow": 1}
    assert recorder.fast_path_fraction("g") == pytest.approx(2 / 3)
    assert recorder.fast_path_fraction() == pytest.approx(2 / 3)


def test_fast_fraction_empty_is_nan():
    recorder = LatencyRecorder()
    assert math.isnan(recorder.fast_path_fraction())


def test_throughput_uses_delivery_window():
    recorder = LatencyRecorder()
    recorder.record("g", 1.0, "fast", now_ms=1000.0)
    for t in range(1, 11):
        recorder.record("g", 1.0, "fast", now_ms=1000.0 + t * 100.0)
    # 11 deliveries over a 1000ms window.
    assert recorder.throughput_per_sec() == pytest.approx(11.0, rel=0.01)


def test_throughput_explicit_window():
    recorder = LatencyRecorder()
    for t in range(10):
        recorder.record("g", 1.0, "fast", now_ms=float(t))
    assert recorder.throughput_per_sec(window_ms=1000.0) == \
        pytest.approx(10.0)


def test_throughput_zero_without_deliveries():
    recorder = LatencyRecorder()
    assert recorder.throughput_per_sec() == 0.0
