"""repro.trace: determinism, schema pin, critical path, wire codec,
sampling, ring buffer, and the report fold.

The headline guarantee under test: a seeded sim run's trace export is
a *regression artifact* -- two invocations serialize to identical
bytes -- and the critical-path summary tells fast-path commits from
slow-path ones.  The export's key sets are pinned by the golden file
``tests/data/trace_schema.json``; regenerate a deliberate change
with::

    python tests/test_trace.py --regen
"""

import asyncio
import json
import os

import pytest

from repro.messages.trace import (
    trace_context_from_bytes,
    trace_context_to_bytes,
)
from repro.scenario import (
    CrashReplica,
    Scenario,
    ScenarioRunner,
    WorkloadSpec,
    preset,
)
from repro.trace import (
    SPAN_CLIENT_REQUEST,
    SPAN_CLIENT_SLOW_PATH,
    SPAN_NAMES,
    ActiveTracer,
    Span,
    TraceCollector,
    TraceContext,
    chrome_trace,
    critical_path,
    export_json,
    export_spans,
    summarize_traces,
)
from repro.transport.codec import (
    TRACED,
    decode_frame,
    decode_frame_traced,
    encode_frame,
)

GOLDEN_PATH = os.path.join(os.path.dirname(__file__), "data",
                           "trace_schema.json")


def _traced_run(scenario, sample_rate: float = 1.0):
    """One traced sim run: ``(report, runner)``."""
    runner = ScenarioRunner(trace=True, trace_sample_rate=sample_rate)
    report = runner.run(scenario)
    return report, runner


def _slow_path_scenario() -> Scenario:
    # Four replicas with one crashed from t=0: the 3f+1 fast quorum
    # is unreachable, the 2f+1 slow quorum is not -- every command
    # commits via the client-combined slow path.
    return Scenario(
        name="slow-trace",
        protocol="ezbft",
        replica_regions=("local",) * 4,
        latency="local",
        workload=WorkloadSpec(mode="closed", clients_per_region=1,
                              requests_per_client=4),
        faults=(CrashReplica(at_ms=0.0, replica="r3"),),
        slow_path_timeout=50.0,
        retry_timeout=400.0,
        suspicion_timeout=30_000.0,
        view_change_timeout=30_000.0,
        seed=3,
    )


# ----------------------------------------------------------------------
# Determinism (the trace-as-regression-artifact guarantee)
# ----------------------------------------------------------------------
def test_seeded_sim_trace_is_byte_identical():
    scenario = preset("smoke")
    _, first = _traced_run(scenario)
    _, second = _traced_run(scenario)
    a = export_json(first.last_trace_spans,
                    dropped=first.last_trace["dropped_spans"])
    b = export_json(second.last_trace_spans,
                    dropped=second.last_trace["dropped_spans"])
    assert a == b
    assert first.last_trace["span_count"] > 0


def test_traced_report_summary_is_deterministic():
    scenario = preset("smoke")
    first, _ = _traced_run(scenario)
    second, _ = _traced_run(scenario)
    assert first.trace == second.trace


def test_tracing_does_not_perturb_the_run():
    # The traced run must deliver the same results as the untraced
    # one: tracing observes the protocol, it must not steer it.
    scenario = preset("smoke")
    untraced = ScenarioRunner().run(scenario).to_dict()
    traced, _ = _traced_run(scenario)
    traced = traced.to_dict()
    assert untraced.pop("wall_seconds") >= 0.0
    assert traced.pop("wall_seconds") >= 0.0
    assert traced.pop("trace")["traces"] > 0
    assert untraced == traced


# ----------------------------------------------------------------------
# Report fold
# ----------------------------------------------------------------------
def test_untraced_report_has_no_trace_key():
    runner = ScenarioRunner()
    report = runner.run(preset("smoke"))
    assert "trace" not in report.to_dict()
    assert runner.last_trace is None


def test_fast_path_commits_bucketed_fast():
    report, runner = _traced_run(preset("smoke"))
    by_path = report.trace["by_path"]
    assert set(by_path) == {"fast"}
    assert by_path["fast"]["count"] == report.delivered
    assert SPAN_CLIENT_REQUEST in by_path["fast"]["phase_ms"]
    names = {s.name for s in runner.last_trace_spans}
    # Every pipeline stage except the slow-path fallback shows up.
    assert names == set(SPAN_NAMES) - {SPAN_CLIENT_SLOW_PATH}


def test_slow_path_commits_bucketed_slow():
    report, runner = _traced_run(_slow_path_scenario())
    by_path = report.trace["by_path"]
    assert set(by_path) == {"slow"}
    assert by_path["slow"]["count"] == report.delivered == 4
    names = {s.name for s in runner.last_trace_spans}
    assert SPAN_CLIENT_SLOW_PATH in names


# ----------------------------------------------------------------------
# Sampling + ring buffer
# ----------------------------------------------------------------------
def test_sample_rate_zero_collects_nothing():
    report, runner = _traced_run(preset("smoke"), sample_rate=0.0)
    assert runner.last_trace["span_count"] == 0
    assert report.trace["traces"] == 0
    assert report.delivered > 0  # the run itself is unaffected


def test_sampling_is_deterministic_per_trace_id():
    tracer = ActiveTracer(lambda: 0.0, collector=TraceCollector(),
                          sample_rate=0.5)
    decisions = [tracer.sampled(f"c{i}:{i}") for i in range(64)]
    again = [tracer.sampled(f"c{i}:{i}") for i in range(64)]
    assert decisions == again
    assert 0 < sum(decisions) < 64  # rate actually partitions ids


def test_collector_ring_bounds_memory_and_counts_drops():
    collector = TraceCollector(max_spans=2)
    tracer = ActiveTracer(lambda: 0.0, collector=collector)
    for i in range(3):
        span = tracer.start_span(SPAN_CLIENT_REQUEST, f"c{i}",
                                 trace_id=f"c{i}:{i}")
        tracer.end_span(span)
    assert len(collector.spans()) == 2
    assert collector.dropped == 1


# ----------------------------------------------------------------------
# Wire codec: TRACED frames are additive
# ----------------------------------------------------------------------
class _Hello:
    """Minimal message stand-in with a stable wire dict."""

    def to_wire(self):
        return {"type": "x", "n": 1}


def test_traced_frame_round_trips_context():
    ctx = TraceContext(trace_id="c0:1", span_id="c0:2")
    body = encode_frame("c0", ("127.0.0.1", 9), message=_Hello(),
                        trace=trace_context_to_bytes(ctx))
    assert body[0] == TRACED
    sender, addr, wire, trace = decode_frame_traced(body)
    assert (sender, addr) == ("c0", ("127.0.0.1", 9))
    assert wire == {"type": "x", "n": 1}
    assert trace_context_from_bytes(trace) == ctx


def test_plain_frames_still_decode_without_trace():
    body = encode_frame("r1", ("127.0.0.1", 9), message=_Hello())
    assert body[0] != TRACED
    sender, addr, wire, trace = decode_frame_traced(body)
    assert trace is None and wire == {"type": "x", "n": 1}
    # The 3-tuple decoder drops any trace context but keeps working.
    assert decode_frame(body) == (sender, addr, wire)


def test_hello_frames_ignore_trace_argument():
    ctx = trace_context_to_bytes(TraceContext("t", "s"))
    with_trace = encode_frame("r1", ("127.0.0.1", 9), trace=ctx)
    without = encode_frame("r1", ("127.0.0.1", 9))
    assert with_trace == without


# ----------------------------------------------------------------------
# Critical path
# ----------------------------------------------------------------------
def _span(span_id, name, node, start, end, trace_id="t1",
          parent=None, **attrs):
    span = Span(trace_id=trace_id, span_id=span_id, name=name,
                node=node, start_ms=start, parent_id=parent)
    span.end_ms = end
    span.attrs.update(attrs)
    return span


def test_critical_path_walks_latest_finishing_chain():
    root = _span("s1", "client.request", "c0", 0.0, 10.0, path="fast")
    early = _span("s2", "owner.lead", "r0", 1.0, 3.0, parent="s1")
    late = _span("s3", "replica.vote", "r1", 2.0, 8.0, parent="s1")
    chain = critical_path([root, early, late])
    assert [s.span_id for s, _ in chain] == ["s1", "s3"]
    self_times = {s.span_id: ms for s, ms in chain}
    # Root keeps only the time its chosen child does not cover.
    assert self_times == {"s1": 4.0, "s3": 6.0}


def test_post_completion_work_is_off_the_critical_path():
    # Fast-path COMMITFAST fan-out lands after the client delivered;
    # children finishing past the root's end are housekeeping, not
    # delivery latency.
    root = _span("s1", "client.request", "c0", 0.0, 10.0, path="fast")
    on_path = _span("s2", "owner.lead", "r0", 1.0, 9.0, parent="s1")
    after = _span("s3", "replica.commit", "r0", 9.5, 20.0,
                  parent="s1")
    chain = critical_path([root, on_path, after])
    assert [s.span_id for s, _ in chain] == ["s1", "s2"]


def test_summarize_buckets_by_root_path_tag():
    fast_root = _span("s1", "client.request", "c0", 0.0, 4.0,
                      trace_id="a", path="fast")
    slow_root = _span("s2", "client.request", "c1", 0.0, 9.0,
                      trace_id="b", path="slow")
    untagged = _span("s3", "client.request", "c2", 0.0, 1.0,
                     trace_id="c")
    summary = summarize_traces([fast_root, slow_root, untagged])
    assert set(summary["by_path"]) == {"fast", "slow", "untagged"}
    assert summary["by_path"]["fast"]["total_ms"] == 4.0
    assert summary["by_path"]["slow"]["total_ms"] == 9.0
    assert summary["traces"] == 3 and summary["spans"] == 3


# ----------------------------------------------------------------------
# /trace endpoint
# ----------------------------------------------------------------------
def test_obs_server_serves_ring_buffered_trace():
    from repro.obs import MetricsRegistry, ObsServer, fetch_json

    collector = TraceCollector()
    tracer = ActiveTracer(lambda: 5.0, collector=collector)
    span = tracer.start_span(SPAN_CLIENT_REQUEST, "c0",
                             trace_id="c0:1")
    tracer.end_span(span, attrs={"path": "fast"})

    async def scenario():
        server = ObsServer(
            MetricsRegistry(),
            trace=lambda: export_spans(collector.spans(),
                                       dropped=collector.dropped))
        await server.start()
        try:
            host, port = server.address
            return await fetch_json(host, port, "/trace")
        finally:
            await server.stop()

    body = asyncio.run(scenario())
    assert body["span_count"] == 1
    assert body["spans"][0]["name"] == SPAN_CLIENT_REQUEST
    assert body["spans"][0]["attrs"]["path"] == "fast"


def test_obs_server_trace_404_when_not_enabled():
    from repro.errors import TransportError
    from repro.obs import MetricsRegistry, ObsServer, fetch_json

    async def scenario():
        server = ObsServer(MetricsRegistry())
        await server.start()
        try:
            host, port = server.address
            with pytest.raises(TransportError, match="404"):
                await fetch_json(host, port, "/trace")
        finally:
            await server.stop()

    asyncio.run(scenario())


# ----------------------------------------------------------------------
# Golden schema pin
# ----------------------------------------------------------------------
def current_schema():
    report, runner = _traced_run(preset("smoke"))
    export = export_spans(runner.last_trace_spans)
    chrome = chrome_trace(runner.last_trace_spans)
    bucket = report.trace["by_path"]["fast"]
    return {
        "export_keys": sorted(export),
        "span_keys": sorted(export["spans"][0]),
        "span_names": sorted(SPAN_NAMES),
        "chrome_event_keys": sorted(chrome["traceEvents"][0]),
        "report_trace_keys": sorted(report.trace),
        "report_trace_bucket_keys": sorted(bucket),
    }


def golden_schema():
    with open(GOLDEN_PATH, "r", encoding="utf-8") as fh:
        return json.load(fh)


def test_trace_schema_matches_golden_file():
    current = current_schema()
    golden = golden_schema()
    assert set(current) == set(golden), \
        "trace schema sections changed; regenerate the golden file " \
        "deliberately (see module docstring)"
    for section in golden:
        assert current[section] == golden[section], (
            f"trace schema drifted in {section!r}: the export is a "
            f"regression artifact consumed by CI and Perfetto "
            f"tooling.  If intentional, regenerate "
            f"tests/data/trace_schema.json (module docstring).")


if __name__ == "__main__":
    import sys
    if "--regen" in sys.argv:
        os.makedirs(os.path.dirname(GOLDEN_PATH), exist_ok=True)
        with open(GOLDEN_PATH, "w", encoding="utf-8") as fh:
            json.dump(current_schema(), fh, indent=2)
            fh.write("\n")
        print(f"wrote {GOLDEN_PATH}")
    else:
        print("pass --regen to rewrite the golden schema file")
