"""JSON/TOML spec loader: preset round-trips, every fault type, and
key-naming validation errors."""

import json
import sys

import pytest

from repro.errors import ConfigurationError
from repro.scenario import (
    BandwidthCap,
    ClientChurn,
    CrashReplica,
    Heal,
    Jitter,
    KillProcess,
    LatencyShift,
    PacketLoss,
    Partition,
    RecoverReplica,
    Reorder,
    RestartProcess,
    Scenario,
    SwapByzantine,
    WorkloadSpec,
    available_presets,
    dumps_spec,
    load_spec,
    loads_spec,
    preset,
    save_spec,
    scenario_from_dict,
    scenario_to_dict,
)
from repro.scenario.loader import FAULT_TYPES, sweep_from_dict
from repro.sweep import SweepSpec

HAS_TOMLLIB = sys.version_info >= (3, 11)
FORMATS = ("json", "toml") if HAS_TOMLLIB else ("json",)


# ----------------------------------------------------------------------
# Round-trip properties
# ----------------------------------------------------------------------
@pytest.mark.parametrize("name", available_presets())
@pytest.mark.parametrize("fmt", FORMATS)
def test_every_preset_round_trips(name, fmt):
    scenario = preset(name)
    text = dumps_spec(scenario, fmt)
    assert loads_spec(text, fmt) == scenario


#: One instance of every fault type (ensures the registry covers the
#: whole faults module and each field round-trips).
ALL_FAULTS = (
    CrashReplica(at_ms=10.0, replica="r1"),
    RecoverReplica(at_ms=20.0, replica="r1"),
    Partition(at_ms=30.0, sides=(("r3",), ("r0", "r1", "r2"))),
    Heal(at_ms=40.0),
    SwapByzantine(at_ms=50.0, replica="r2", behavior="equivocate"),
    LatencyShift(at_ms=60.0, factor=1.5),
    ClientChurn(at_ms=70.0, add=2, stop=1, region="tokyo"),
    PacketLoss(at_ms=80.0, probability=0.05, src="r0", dst="*"),
    Jitter(at_ms=85.0, jitter_ms=3.0),
    BandwidthCap(at_ms=90.0, rate_kbps=256.0, burst_bytes=8192,
                 src="*", dst="r1"),
    Reorder(at_ms=95.0, probability=0.1, extra_ms=2.5),
    KillProcess(at_ms=97.0, replica="r3"),
    RestartProcess(at_ms=99.0, replica="r3"),
)


def test_fault_registry_covers_every_fault_type():
    from repro.scenario import faults as fault_mod
    declared = {name for name in fault_mod.__all__
                if name.endswith(("Replica", "Partition", "Heal",
                                  "Byzantine", "Shift", "Churn",
                                  "Loss", "Jitter", "Cap",
                                  "Reorder", "Process"))}
    assert set(FAULT_TYPES) == declared
    assert {type(e).__name__ for e in ALL_FAULTS} == set(FAULT_TYPES)


@pytest.mark.parametrize("fmt", FORMATS)
def test_every_fault_type_round_trips(fmt):
    scenario = Scenario(
        name="fault-zoo",
        workload=WorkloadSpec(mode="open", rate_per_client=10.0),
        duration_ms=100.0,
        faults=ALL_FAULTS,
    )
    text = dumps_spec(scenario, fmt)
    loaded = loads_spec(text, fmt)
    assert loaded == scenario
    assert loaded.faults == ALL_FAULTS


@pytest.mark.parametrize("fmt", FORMATS)
def test_sweep_spec_round_trips(fmt):
    spec = SweepSpec(
        base="smoke",
        grid={"clients": (2, 4), "seed": (1, 2, 3)},
        zipped={"protocol": ("ezbft", "pbft"),
                "contention": (0.5, 0.0)},
        name="demo")
    assert loads_spec(dumps_spec(spec, fmt), fmt) == spec


@pytest.mark.parametrize("fmt", FORMATS)
def test_sweep_with_inline_scenario_base_round_trips(fmt):
    spec = SweepSpec(base=preset("figure4"), grid={"seed": (1, 2)})
    assert loads_spec(dumps_spec(spec, fmt), fmt) == spec


def test_sweep_with_none_axis_round_trips_in_json():
    # The canonical fig6 shape: a zipped protocol block whose
    # leaderless arm pins primary_region to None.
    spec = SweepSpec(
        base="smoke",
        grid={"clients": (1, 10)},
        zipped={"protocol": ("zyzzyva", "ezbft"),
                "primary_region": ("virginia", None)})
    assert loads_spec(dumps_spec(spec, "json"), "json") == spec


def test_sweep_built_with_list_axes_round_trips_equal():
    # The loader yields tuple axis values; a spec built with the
    # natural list literals must still compare equal after the trip.
    spec = SweepSpec(base="smoke", grid={"clients": [1, 2]},
                     zipped={"protocol": ["ezbft", "pbft"]})
    assert loads_spec(dumps_spec(spec, "json"), "json") == spec


def test_non_finite_float_rejected_naming_key():
    import dataclasses
    scenario = dataclasses.replace(preset("smoke"),
                                   retry_timeout=float("inf"))
    for fmt in FORMATS:
        with pytest.raises(ConfigurationError,
                           match="retry_timeout"):
            dumps_spec(scenario, fmt)


def test_non_finite_float_rejected_on_load_too():
    # json.loads parses NaN by default; a NaN timeout would defeat
    # every comparison in Scenario.validate and run silently.
    text = '{"scenario": {"name": "x", "slow_path_timeout": NaN}}'
    with pytest.raises(ConfigurationError,
                       match="slow_path_timeout"):
        loads_spec(text, "json")
    if HAS_TOMLLIB:
        with pytest.raises(ConfigurationError,
                           match="slow_path_timeout"):
            loads_spec('[scenario]\nname = "x"\n'
                       'slow_path_timeout = nan\n', "toml")


def test_failed_save_spec_preserves_existing_file(tmp_path):
    path = tmp_path / "keep.json"
    save_spec(preset("smoke"), str(path))
    original = path.read_text()
    bad = SweepSpec(base="smoke",
                    zipped={"primary_region": ("local", None)})
    with pytest.raises(ConfigurationError):
        save_spec(bad, str(tmp_path / "keep.toml"))  # toml rejects None
    # now fail against the existing JSON file via a non-finite field
    import dataclasses
    broken = dataclasses.replace(preset("smoke"),
                                 retry_timeout=float("nan"))
    with pytest.raises(ConfigurationError):
        save_spec(broken, str(path))
    assert path.read_text() == original  # not truncated


def test_sweep_with_none_axis_rejected_in_toml_naming_axis():
    spec = SweepSpec(base="smoke",
                     zipped={"primary_region": ("virginia", None)})
    with pytest.raises(ConfigurationError,
                       match="'primary_region'.*JSON"):
        dumps_spec(spec, "toml")


def test_load_save_spec_files(tmp_path):
    scenario = preset("crash-recovery")
    for suffix in (".json",) + ((".toml",) if HAS_TOMLLIB else ()):
        path = tmp_path / f"spec{suffix}"
        save_spec(scenario, str(path))
        assert load_spec(str(path)) == scenario


def test_load_spec_unknown_extension(tmp_path):
    path = tmp_path / "spec.yaml"
    path.write_text("{}")
    with pytest.raises(ConfigurationError, match=r"\.json or"):
        load_spec(str(path))


# ----------------------------------------------------------------------
# Validation errors name the offending key
# ----------------------------------------------------------------------
def test_unknown_scenario_key_named():
    with pytest.raises(ConfigurationError, match="'protocl'"):
        scenario_from_dict({"name": "x", "protocl": "ezbft"})


def test_mistyped_scenario_value_named():
    with pytest.raises(ConfigurationError, match="scenario.seed"):
        scenario_from_dict({"name": "x", "seed": "seven"})
    with pytest.raises(ConfigurationError, match="scenario.seed"):
        scenario_from_dict({"name": "x", "seed": True})


def test_unknown_workload_key_named():
    with pytest.raises(ConfigurationError,
                       match="'contension'"):
        scenario_from_dict(
            {"name": "x", "workload": {"contension": 0.5}})


def test_missing_name_key_named():
    with pytest.raises(ConfigurationError, match="'name'"):
        scenario_from_dict({"protocol": "ezbft"})


def test_unknown_fault_type_named():
    with pytest.raises(ConfigurationError, match="'MeteorStrike'"):
        scenario_from_dict({
            "name": "x",
            "faults": [{"type": "MeteorStrike", "at_ms": 1.0}]})


def test_unknown_fault_field_named():
    with pytest.raises(ConfigurationError, match="'replika'"):
        scenario_from_dict({
            "name": "x",
            "faults": [{"type": "CrashReplica", "at_ms": 1.0,
                        "replika": "r1"}]})


def test_bad_phase_key_named():
    with pytest.raises(ConfigurationError, match="'length_ms'"):
        scenario_from_dict({
            "name": "x",
            "phases": [{"name": "p", "length_ms": 5.0}]})


def test_semantic_validation_still_runs():
    # structural checks pass; Scenario.validate() catches the rest
    with pytest.raises(ConfigurationError, match="contention"):
        scenario_from_dict(
            {"name": "x", "workload": {"contention": 3.0}})


def test_document_needs_exactly_one_table():
    with pytest.raises(ConfigurationError, match="exactly one"):
        loads_spec(json.dumps({"scenario": {"name": "a"},
                               "sweep": {"base": "smoke"}}))
    with pytest.raises(ConfigurationError, match="exactly one"):
        loads_spec("{}")


def test_invalid_json_and_unknown_format():
    with pytest.raises(ConfigurationError, match="invalid JSON"):
        loads_spec("{nope", "json")
    with pytest.raises(ConfigurationError, match="'yaml'"):
        loads_spec("{}", "yaml")


def test_sweep_dict_validation():
    with pytest.raises(ConfigurationError, match="'base'"):
        sweep_from_dict({"grid": {}})
    with pytest.raises(ConfigurationError, match="'gird'"):
        sweep_from_dict({"base": "smoke", "gird": {}})
    with pytest.raises(ConfigurationError, match="sweep.grid.clients"):
        sweep_from_dict({"base": "smoke", "grid": {"clients": []}})


def test_unserializable_scenario_rejected():
    class FakeMachine:
        pass

    with pytest.raises(ConfigurationError, match="statemachine"):
        scenario_to_dict(Scenario(name="x", statemachine=FakeMachine))

    from repro.sim.latency import LatencyMatrix
    anon = LatencyMatrix(name="anon", regions=("a", "b", "c", "d"),
                         pairs={})
    with pytest.raises(ConfigurationError, match="latency"):
        scenario_to_dict(Scenario(
            name="x", replica_regions=("a", "b", "c", "d"),
            latency=anon))


def test_loaded_scenario_is_validated():
    # load_spec output is ready to run: a structurally valid but
    # semantically broken spec fails at load time, naming the problem.
    with pytest.raises(ConfigurationError, match="4 replicas"):
        scenario_from_dict({"name": "x",
                            "replica_regions": ["virginia"]})
