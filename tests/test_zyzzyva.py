"""Zyzzyva baseline: speculative fast path, commit fallback, view change."""

import pytest

from repro.byzantine import silence_node

from helpers import (
    DeliveryLog,
    assert_replicas_consistent,
    geo_cluster,
    lan_cluster,
)


def test_fast_path_single_request():
    cluster = lan_cluster("zyzzyva")
    log = DeliveryLog()
    client = cluster.add_client("c0", "local",
                                on_delivery=log.hook("c0"))
    client.submit(client.next_command("put", "k", "v"))
    cluster.run_until_idle()
    assert log.paths == ["fast"]
    assert log.results == ["OK"]


def test_three_step_latency_shape():
    cluster = lan_cluster("zyzzyva")
    log = DeliveryLog()
    client = cluster.add_client("c0", "local",
                                on_delivery=log.hook("c0"))
    client.submit(client.next_command("put", "k", "v"))
    cluster.run_until_idle()
    assert log.latencies()[0] == pytest.approx(0.3, abs=0.05)


def test_speculative_state_matches_after_run():
    cluster = lan_cluster("zyzzyva")
    client = cluster.add_client("c0", "local")
    for i in range(3):
        client.submit(client.next_command("put", f"k{i}", i))
        cluster.run_until_idle()
    for replica in cluster.replicas.values():
        for i in range(3):
            assert replica.statemachine.get_speculative(f"k{i}") == i


def test_history_digests_chain_identically():
    cluster = lan_cluster("zyzzyva")
    client = cluster.add_client("c0", "local")
    for i in range(4):
        client.submit(client.next_command("put", "k", i))
        cluster.run_until_idle()
    digests = {r._history_digest for r in cluster.replicas.values()}
    assert len(digests) == 1


def test_silent_backup_forces_slow_path():
    cluster = lan_cluster("zyzzyva")
    silence_node(cluster, "r3")
    log = DeliveryLog()
    client = cluster.add_client("c0", "local",
                                on_delivery=log.hook("c0"))
    client.submit(client.next_command("put", "k", "v"))
    cluster.run_until_idle()
    assert log.paths == ["slow"]
    assert log.results == ["OK"]


def test_slow_path_sends_local_commits():
    cluster = lan_cluster("zyzzyva")
    silence_node(cluster, "r3")
    client = cluster.add_client("c0", "local")
    client.submit(client.next_command("put", "k", "v"))
    cluster.run_until_idle()
    for rid in ("r0", "r1", "r2"):
        assert cluster.replicas[rid]._max_committed >= 0


def test_view_change_on_silent_primary():
    cluster = lan_cluster("zyzzyva")
    silence_node(cluster, "r0")
    log = DeliveryLog()
    client = cluster.add_client("c0", "local",
                                on_delivery=log.hook("c0"))
    client.submit(client.next_command("put", "k", "v"))
    cluster.run_until_idle()
    assert log.results == ["OK"]
    for rid in ("r1", "r2", "r3"):
        assert cluster.replicas[rid].view >= 1


def test_sequential_requests_fifo_order():
    cluster = lan_cluster("zyzzyva")
    log = DeliveryLog()
    client = cluster.add_client("c0", "local",
                                on_delivery=log.hook("c0"))
    for i in range(5):
        client.submit(client.next_command("put", "k", i))
        cluster.run_until_idle()
    assert log.results == ["OK"] * 5
    for replica in cluster.replicas.values():
        assert replica.statemachine.get_speculative("k") == 4


def test_concurrent_clients_all_commit():
    cluster = lan_cluster("zyzzyva")
    log = DeliveryLog()
    for i in range(3):
        client = cluster.add_client(f"c{i}", "local",
                                    on_delivery=log.hook(f"c{i}"))
        client.submit(client.next_command("put", f"k{i}", i))
    cluster.run_until_idle()
    assert sorted(log.paths) == ["fast"] * 3
    specs = [tuple(sorted((k, r.statemachine.get_speculative(k))
                          for k in ("k0", "k1", "k2")))
             for r in cluster.replicas.values()]
    assert len(set(specs)) == 1


def test_geo_latency_matches_table1_model():
    """Zyzzyva from Tokyo with a Virginia primary: paper Table I says
    236ms; the model gives ~228 + processing."""
    cluster = geo_cluster("zyzzyva", primary_region="virginia")
    log = DeliveryLog()
    client = cluster.add_client("c0", "tokyo",
                                on_delivery=log.hook("c0"))
    client.submit(client.next_command("put", "k", "v"))
    cluster.run_until_idle()
    assert log.paths == ["fast"]
    assert log.latencies()[0] == pytest.approx(236, abs=15)
