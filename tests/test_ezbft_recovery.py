"""ezBFT behaviour under byzantine faults: retries, POMs, owner changes
(paper Sections IV-D and IV-E)."""

import pytest

from repro.byzantine import (
    CorruptResultReplica,
    DepSuppressingReplica,
    EquivocatingLeaderReplica,
    SilentReplica,
    install_byzantine,
)
from repro.core.instance import EntryStatus

from helpers import (
    DeliveryLog,
    assert_replicas_consistent,
    geo_cluster,
    lan_cluster,
)

CORRECT = ("r0", "r2", "r3")


def test_silent_target_replica_recovers_via_retry():
    cluster = lan_cluster()
    install_byzantine(cluster, "r1", SilentReplica)
    log = DeliveryLog()
    client = cluster.add_client("c0", "local", target_replica="r1",
                                on_delivery=log.hook("c0"))
    client.submit(client.next_command("put", "k", "v"))
    cluster.run_until_idle()
    assert log.results == ["OK"]
    assert client.stats["retries"] >= 1
    state = assert_replicas_consistent(cluster, exclude=("r1",))
    assert state == {"k": "v"}


def test_client_switches_target_after_recovery():
    cluster = lan_cluster()
    install_byzantine(cluster, "r1", SilentReplica)
    log = DeliveryLog()
    client = cluster.add_client("c0", "local", target_replica="r1",
                                on_delivery=log.hook("c0"))
    client.submit(client.next_command("put", "k", "v"))
    cluster.run_until_idle()
    assert client.target_replica != "r1"
    # The next request avoids the dead replica entirely: no retries.
    before = client.stats["retries"]
    client.submit(client.next_command("put", "k2", "v2"))
    cluster.run_until_idle()
    assert client.stats["retries"] == before


def test_silent_replica_space_gets_frozen():
    cluster = lan_cluster()
    install_byzantine(cluster, "r1", SilentReplica)
    client = cluster.add_client("c0", "local", target_replica="r1")
    client.submit(client.next_command("put", "k", "v"))
    cluster.run_until_idle()
    for rid in CORRECT:
        assert cluster.replicas[rid].spaces["r1"].frozen


def test_silent_nonleader_replica_forces_slow_path_only():
    """A silent *participant* (not the leader) costs the fast quorum but
    nothing else: commands still commit on the slow path."""
    cluster = lan_cluster()
    install_byzantine(cluster, "r3", SilentReplica)
    log = DeliveryLog()
    client = cluster.add_client("c0", "local", target_replica="r0",
                                on_delivery=log.hook("c0"))
    client.submit(client.next_command("put", "k", "v"))
    cluster.run_until_idle()
    assert log.paths == ["slow"]
    assert log.results == ["OK"]
    assert_replicas_consistent(cluster, exclude=("r3",))


def test_equivocating_leader_triggers_pom_and_owner_change():
    cluster = lan_cluster()
    install_byzantine(cluster, "r1", EquivocatingLeaderReplica)
    log = DeliveryLog()
    client = cluster.add_client("c0", "local", target_replica="r1",
                                on_delivery=log.hook("c0"))
    client.submit(client.next_command("put", "k", "v"))
    cluster.run_until_idle()
    assert client.stats["poms_sent"] == 1
    assert log.results == ["OK"]
    for rid in CORRECT:
        assert cluster.replicas[rid].spaces["r1"].frozen
    assert_replicas_consistent(cluster, exclude=("r1",))


def test_pom_validation_rejects_bogus_proof():
    """A POM whose evidence does not conflict must be ignored."""
    cluster = lan_cluster()
    client = cluster.add_client("c0", "local", target_replica="r0")
    client.submit(client.next_command("put", "k", "v"))
    cluster.run_until_idle()
    replica = cluster.replicas["r2"]
    entry = next(iter(replica.spaces["r0"].entries()))
    from repro.messages.ezbft import ProofOfMisbehavior

    bogus = ProofOfMisbehavior(
        suspect="r0", owner_number=0,
        evidence=(entry.spec_order, entry.spec_order))  # identical!
    before = replica.stats["owner_changes_started"]
    replica.on_message("c0", bogus)
    cluster.run_until_idle()
    assert replica.stats["owner_changes_started"] == before
    assert not replica.spaces["r0"].frozen


def test_dep_suppressing_replica_cannot_break_consistency():
    """Figure-3 scenario: a replica lies about dependencies; the client's
    2f+1 combination still includes at least one correct replica that
    reported the dependency, so execution stays consistent."""
    cluster = geo_cluster()
    install_byzantine(cluster, "r1", DepSuppressingReplica)
    log = DeliveryLog()
    c0 = cluster.add_client("c0", "virginia", target_replica="r0",
                            on_delivery=log.hook("c0"))
    c1 = cluster.add_client("c1", "sydney", target_replica="r3",
                            on_delivery=log.hook("c1"))
    c0.submit(c0.next_command("put", "hot", "a"))
    c1.submit(c1.next_command("put", "hot", "b"))
    cluster.run_until_idle()
    assert len(log.records) == 2
    assert_replicas_consistent(cluster, exclude=("r1",))


def test_corrupt_result_replica_cannot_break_fast_path_safety():
    """A replica lying about results never matches the other 3, so the
    client cannot assemble a fast certificate containing the lie."""
    cluster = lan_cluster()
    install_byzantine(cluster, "r2", CorruptResultReplica)
    log = DeliveryLog()
    client = cluster.add_client("c0", "local", target_replica="r0",
                                on_delivery=log.hook("c0"))
    client.submit(client.next_command("put", "k", "v"))
    cluster.run_until_idle()
    assert log.results == ["OK"]  # never '##corrupt##'
    assert_replicas_consistent(cluster, exclude=("r2",))


def test_owner_change_preserves_committed_command():
    """A command committed in the suspect's space survives the owner
    change (stability): commit first, then depose the leader."""
    cluster = lan_cluster()
    log = DeliveryLog()
    client = cluster.add_client("c0", "local", target_replica="r1",
                                on_delivery=log.hook("c0"))
    client.submit(client.next_command("put", "k", "v"))
    cluster.run_until_idle()
    assert log.results == ["OK"]
    # Now every correct replica suspects r1 (simulating timeouts).
    for rid in ("r0", "r2", "r3"):
        cluster.replicas[rid].owner_changes.suspect("r1")
    cluster.run_until_idle()
    for rid in ("r0", "r2", "r3"):
        space = cluster.replicas[rid].spaces["r1"]
        assert space.frozen
        entries = list(space.entries())
        assert len(entries) == 1
        assert entries[0].command.ident == ("c0", 1)
        assert entries[0].status == EntryStatus.EXECUTED
    assert_replicas_consistent(cluster)


def test_owner_change_new_owner_is_next_in_ring():
    cluster = lan_cluster()
    client = cluster.add_client("c0", "local", target_replica="r1")
    client.submit(client.next_command("put", "k", "v"))
    cluster.run_until_idle()
    for rid in ("r0", "r2", "r3"):
        cluster.replicas[rid].owner_changes.suspect("r1")
    cluster.run_until_idle()
    # O was 1, so O' = 2 and the new owner is r2.
    for rid in ("r0", "r2", "r3"):
        assert cluster.replicas[rid].spaces["r1"].owner_number == 2


def test_single_suspicion_insufficient_for_owner_change():
    """f+1 = 2 STARTOWNERCHANGE votes are required; one replica alone
    cannot freeze a space."""
    cluster = lan_cluster()
    client = cluster.add_client("c0", "local", target_replica="r1")
    client.submit(client.next_command("put", "k", "v"))
    cluster.run_until_idle()
    cluster.replicas["r0"].owner_changes.suspect("r1")
    cluster.run_until_idle()
    # r0 voted but nobody joined: r2/r3 see only 1 < f+1 votes.
    assert not cluster.replicas["r2"].spaces["r1"].frozen
    assert not cluster.replicas["r3"].spaces["r1"].frozen


def test_progress_with_f_silent_replicas_of_n7():
    """N=7 tolerates f=2 silent replicas via the slow path."""
    from repro.sim.latency import LOCAL
    from repro.cluster.builder import build_cluster
    from repro.sim.network import CpuModel

    cluster = build_cluster("ezbft", ["local"] * 7, LOCAL,
                            cpu=CpuModel.free(),
                            slow_path_timeout=50.0,
                            retry_timeout=200.0)
    install_byzantine(cluster, "r5", SilentReplica)
    install_byzantine(cluster, "r6", SilentReplica)
    log = DeliveryLog()
    client = cluster.add_client("c0", "local", target_replica="r0",
                                on_delivery=log.hook("c0"))
    client.submit(client.next_command("put", "k", "v"))
    cluster.run_until_idle()
    assert log.results == ["OK"]
    assert log.paths == ["slow"]
    assert_replicas_consistent(cluster, exclude=("r5", "r6"))
