"""PBFT baseline: ordering, checkpoints, view changes."""

import pytest

from repro.byzantine import silence_node

from helpers import (
    DeliveryLog,
    assert_replicas_consistent,
    geo_cluster,
    lan_cluster,
)


def test_single_request_commits():
    cluster = lan_cluster("pbft")
    log = DeliveryLog()
    client = cluster.add_client("c0", "local",
                                on_delivery=log.hook("c0"))
    client.submit(client.next_command("put", "k", "v"))
    cluster.run_until_idle()
    assert log.results == ["OK"]
    assert_replicas_consistent(cluster)


def test_five_step_latency_shape():
    """PBFT client latency = request + pre-prepare + prepare + commit +
    reply = 5 one-way hops.  In the LAN model each hop is 0.1ms."""
    cluster = lan_cluster("pbft")
    log = DeliveryLog()
    client = cluster.add_client("c0", "local",
                                on_delivery=log.hook("c0"))
    client.submit(client.next_command("put", "k", "v"))
    cluster.run_until_idle()
    assert log.latencies()[0] == pytest.approx(0.5, abs=0.05)


def test_sequential_requests_ordered():
    cluster = lan_cluster("pbft")
    log = DeliveryLog()
    client = cluster.add_client("c0", "local",
                                on_delivery=log.hook("c0"))
    for i in range(5):
        client.submit(client.next_command("put", "k", i))
        cluster.run_until_idle()
    assert log.results == ["OK"] * 5
    state = assert_replicas_consistent(cluster)
    assert state == {"k": 4}


def test_concurrent_clients_totally_ordered():
    cluster = lan_cluster("pbft")
    log = DeliveryLog()
    for i in range(3):
        client = cluster.add_client(f"c{i}", "local",
                                    on_delivery=log.hook(f"c{i}"))
        client.submit(client.next_command("put", "shared", i))
    cluster.run_until_idle()
    assert len(log.records) == 3
    assert_replicas_consistent(cluster)


def test_backup_forwards_request_to_primary():
    cluster = lan_cluster("pbft")
    log = DeliveryLog()
    client = cluster.add_client("c0", "local",
                                on_delivery=log.hook("c0"))
    # Manually send the request to a backup instead of the primary.
    from repro.messages.base import SignedPayload
    from repro.messages.pbft import PBFTRequest

    command = client.next_command("put", "k", "v")
    client._pending[command.ident] = __import__(
        "repro.protocols.pbft.client",
        fromlist=["_Pending"])._Pending(command=command,
                                        start_time=cluster.sim.now)
    request = PBFTRequest(command=command)
    cluster.network.send("c0", "r2",
                         SignedPayload.create(request, client.keypair))
    cluster.run_until_idle()
    assert log.results == ["OK"]


def test_checkpoint_garbage_collects_log():
    cluster = lan_cluster("pbft", checkpoint_interval=4)
    client = cluster.add_client("c0", "local")
    for i in range(10):
        client.submit(client.next_command("put", f"k{i}", i))
        cluster.run_until_idle()
    primary = cluster.replicas["r0"]
    assert primary.stats["checkpoints"] >= 1
    assert primary.checkpoints.stable is not None
    assert primary.checkpoints.stable.watermark >= 4
    # Slots below the stable checkpoint were GC'd.
    assert min(primary._slots) >= primary.checkpoints.stable.watermark - 1


def test_view_change_on_silent_primary():
    cluster = lan_cluster("pbft")
    silence_node(cluster, "r0")  # primary of view 0
    log = DeliveryLog()
    client = cluster.add_client("c0", "local",
                                on_delivery=log.hook("c0"))
    client.submit(client.next_command("put", "k", "v"))
    cluster.run_until_idle()
    assert log.results == ["OK"]
    for rid in ("r1", "r2", "r3"):
        assert cluster.replicas[rid].view >= 1
    assert_replicas_consistent(cluster, exclude=("r0",))


def test_view_change_preserves_executed_state():
    cluster = lan_cluster("pbft")
    log = DeliveryLog()
    client = cluster.add_client("c0", "local",
                                on_delivery=log.hook("c0"))
    client.submit(client.next_command("put", "before", 1))
    cluster.run_until_idle()
    silence_node(cluster, "r0")
    client.submit(client.next_command("put", "after", 2))
    cluster.run_until_idle()
    assert log.results == ["OK", "OK"]
    state = assert_replicas_consistent(cluster, exclude=("r0",))
    assert state == {"before": 1, "after": 2}


def test_equivocating_preprepare_triggers_view_change():
    cluster = lan_cluster("pbft")
    client = cluster.add_client("c0", "local")
    client.submit(client.next_command("put", "k", "v"))
    cluster.run_until_idle()
    replica = cluster.replicas["r1"]
    from repro.crypto.digest import digest
    from repro.messages.pbft import PBFTRequest, PrePrepare

    fake_request = PBFTRequest(
        command=client.next_command("put", "k", "EVIL"))
    conflicting = PrePrepare(
        view=replica.view, seqno=0,
        request_digest=digest(fake_request.to_wire()),
        request=fake_request)
    before = replica.stats["view_changes"]
    replica._on_pre_prepare("r0", conflicting)
    assert replica.stats["view_changes"] == before + 1


def test_reply_cache_for_duplicate_request():
    cluster = lan_cluster("pbft")
    log = DeliveryLog()
    client = cluster.add_client("c0", "local",
                                on_delivery=log.hook("c0"))
    command = client.next_command("put", "k", "v")
    client.submit(command)
    cluster.run_until_idle()
    primary = cluster.replicas["r0"]
    executed_before = primary.stats["executed"]
    from repro.messages.base import SignedPayload
    from repro.messages.pbft import PBFTRequest

    cluster.network.send(
        "c0", "r0",
        SignedPayload.create(PBFTRequest(command=command),
                             client.keypair))
    cluster.run_until_idle()
    assert primary.stats["executed"] == executed_before
