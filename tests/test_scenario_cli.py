"""The ``python -m repro`` CLI, driven in-process through main()."""

import json

import pytest

from repro.__main__ import main


def test_list_protocols(capsys):
    assert main(["list-protocols"]) == 0
    out = capsys.readouterr().out
    for protocol in ("ezbft", "pbft", "zyzzyva", "fab"):
        assert protocol in out
    assert "leaderless" in out


def test_list_presets(capsys):
    assert main(["list-presets"]) == 0
    out = capsys.readouterr().out
    assert "smoke" in out
    assert "figure6-smoke" in out
    assert "crash-recovery" in out


def test_run_smoke_sim_with_json(tmp_path, capsys):
    out_path = tmp_path / "report.json"
    assert main(["run", "--preset", "smoke", "--backend", "sim",
                 "--json", str(out_path)]) == 0
    stdout = capsys.readouterr().out
    assert "fast path" in stdout
    data = json.loads(out_path.read_text())
    assert data["backend"] == "sim"
    assert data["totals"]["delivered"] == 12
    phase = data["phases"][0]
    assert phase["throughput_per_sec"] > 0
    assert phase["latency"]["p50_ms"] is not None


def test_run_both_backends_json_keyed_by_backend(tmp_path):
    out_path = tmp_path / "both.json"
    assert main(["run", "--preset", "smoke", "--backend", "both",
                 "--quiet", "--json", str(out_path)]) == 0
    data = json.loads(out_path.read_text())
    assert set(data) == {"sim", "tcp"}
    for backend, report in data.items():
        assert report["backend"] == backend
        assert report["totals"]["delivered"] == 12
        assert report["phases"][0]["fast_path_ratio"] == 1.0


def test_run_protocol_and_seed_overrides(tmp_path):
    out_path = tmp_path / "pbft.json"
    assert main(["run", "--preset", "smoke", "--backend", "sim",
                 "--protocol", "pbft", "--seed", "77", "--quiet",
                 "--json", str(out_path)]) == 0
    data = json.loads(out_path.read_text())
    assert data["protocol"] == "pbft"
    assert data["seed"] == 77


def test_run_unknown_preset_fails_cleanly(capsys):
    assert main(["run", "--preset", "nope"]) == 2
    assert "unknown preset" in capsys.readouterr().err


def test_compare_across_protocols(tmp_path, capsys):
    out_path = tmp_path / "compare.json"
    assert main(["compare", "--preset", "smoke",
                 "--protocols", "ezbft,pbft",
                 "--json", str(out_path)]) == 0
    out = capsys.readouterr().out
    assert "ezbft" in out and "pbft" in out
    data = json.loads(out_path.read_text())
    assert set(data) == {"ezbft", "pbft"}
    assert all(r["totals"]["delivered"] == 12 for r in data.values())


def test_compare_unknown_protocol_fails_cleanly(capsys):
    assert main(["compare", "--preset", "smoke",
                 "--protocols", "raft"]) == 2
    assert "unknown protocol" in capsys.readouterr().err


# ----------------------------------------------------------------------
# run --spec / sweep / compare --csv
# ----------------------------------------------------------------------
def test_run_spec_file(tmp_path, capsys):
    from repro.scenario import preset, save_spec
    spec_path = tmp_path / "exp.json"
    save_spec(preset("smoke"), str(spec_path))
    out_path = tmp_path / "report.json"
    assert main(["run", "--spec", str(spec_path), "--backend", "sim",
                 "--quiet", "--json", str(out_path)]) == 0
    data = json.loads(out_path.read_text())
    assert data["totals"]["delivered"] == 12


def test_run_spec_with_sweep_document_redirects(tmp_path, capsys):
    spec_path = tmp_path / "grid.json"
    spec_path.write_text(json.dumps(
        {"sweep": {"base": "smoke", "grid": {"clients": [1, 2]}}}))
    assert main(["run", "--spec", str(spec_path)]) == 2
    assert "repro sweep" in capsys.readouterr().err


def test_run_requires_preset_or_spec(capsys):
    with pytest.raises(SystemExit):
        main(["run"])


def test_sweep_grid_csv_and_json(tmp_path, capsys):
    import csv
    csv_path = tmp_path / "out.csv"
    json_path = tmp_path / "out.json"
    assert main(["sweep", "--preset", "smoke",
                 "--grid", "clients=1,2", "--grid", "seed=1..3",
                 "--csv", str(csv_path),
                 "--json", str(json_path)]) == 0
    out = capsys.readouterr().out
    assert "[6/6]" in out  # progress: 2 clients x 3 seeds
    with open(csv_path, newline="") as fh:
        rows = list(csv.DictReader(fh))
    assert len(rows) == 6  # one phase per cell
    assert {row["clients"] for row in rows} == {"1", "2"}
    assert {row["seed"] for row in rows} == {"1", "2", "3"}
    assert all(float(row["throughput_per_sec"]) > 0 for row in rows)
    data = json.loads(json_path.read_text())
    assert data["axes"] == {"clients": [1, 2], "seed": [1, 2, 3]}


def test_sweep_honors_base_scenario_backend(tmp_path, capsys):
    import csv
    from repro.scenario import preset, save_spec
    # A tcp-only base must sweep on tcp, like `run` honors backends.
    spec_path = tmp_path / "tcponly.json"
    save_spec(preset("smoke").with_overrides(backends=("tcp",)),
              str(spec_path))
    csv_path = tmp_path / "out.csv"
    assert main(["sweep", "--spec", str(spec_path),
                 "--grid", "seed=1", "--quiet",
                 "--csv", str(csv_path)]) == 0
    with open(csv_path, newline="") as fh:
        rows = list(csv.DictReader(fh))
    assert {row["backend"] for row in rows} == {"tcp"}
    # ...and an explicit --backend still wins
    assert main(["sweep", "--spec", str(spec_path),
                 "--grid", "seed=1", "--backend", "sim", "--quiet",
                 "--csv", str(csv_path)]) == 0
    with open(csv_path, newline="") as fh:
        rows = list(csv.DictReader(fh))
    assert {row["backend"] for row in rows} == {"sim"}


def test_sweep_spec_file_with_cli_axis_override(tmp_path, capsys):
    pytest.importorskip("tomllib")
    spec_path = tmp_path / "grid.toml"
    spec_path.write_text(
        '[sweep]\nbase = "smoke"\n\n'
        '[sweep.grid]\nclients = [1, 2, 3]\n')
    assert main(["sweep", "--spec", str(spec_path),
                 "--grid", "clients=2", "--quiet"]) == 0


def test_sweep_zip_axes(tmp_path, capsys):
    assert main(["sweep", "--preset", "smoke",
                 "--zip", "protocol=ezbft,pbft",
                 "--zip", "slow_path_timeout=200,300",
                 "--quiet"]) == 0


def test_sweep_bad_grid_axis_fails_cleanly(capsys):
    assert main(["sweep", "--preset", "smoke",
                 "--grid", "knobs=1,2"]) == 2
    assert "knobs" in capsys.readouterr().err


def test_sweep_bad_grid_syntax_fails_cleanly(capsys):
    assert main(["sweep", "--preset", "smoke",
                 "--grid", "clients"]) == 2
    assert "AXIS=V1,V2" in capsys.readouterr().err


def test_sweep_malformed_range_token_fails_cleanly(capsys):
    # '--3..5' must not slip past the int check into a traceback
    assert main(["sweep", "--preset", "smoke",
                 "--grid", "seed=--3..5"]) == 2
    assert "bad range" in capsys.readouterr().err


def test_sweep_trailing_comma_fails_cleanly(capsys):
    assert main(["sweep", "--preset", "smoke",
                 "--grid", "clients=2,"]) == 2
    assert "empty value" in capsys.readouterr().err


@pytest.mark.parametrize("token", ["inf", "nan", "-Infinity"])
def test_sweep_non_finite_axis_value_fails_cleanly(token, capsys):
    # mirrors the spec loader's non-finite rejection
    assert main(["sweep", "--preset", "smoke",
                 "--grid", f"slow_path_timeout={token}"]) == 2
    assert "non-finite" in capsys.readouterr().err


def test_sweep_none_token_pins_axis_to_none(capsys):
    assert main(["sweep", "--preset", "smoke",
                 "--zip", "protocol=zyzzyva,ezbft",
                 "--zip", "primary_region=local,none",
                 "--quiet"]) == 0


def test_sweep_plot_without_matplotlib_fails_cleanly(tmp_path, capsys):
    try:
        import matplotlib  # noqa: F401
        pytest.skip("matplotlib installed; error path not reachable")
    except ImportError:
        pass
    assert main(["sweep", "--preset", "smoke",
                 "--grid", "clients=1",
                 "--quiet", "--plot", str(tmp_path / "x.png")]) == 2
    assert "matplotlib" in capsys.readouterr().err


def test_compare_csv_export(tmp_path, capsys):
    import csv
    csv_path = tmp_path / "cmp.csv"
    assert main(["compare", "--preset", "smoke",
                 "--protocols", "ezbft,pbft",
                 "--csv", str(csv_path)]) == 0
    with open(csv_path, newline="") as fh:
        rows = list(csv.DictReader(fh))
    assert {row["protocol"] for row in rows} == {"ezbft", "pbft"}


# ----------------------------------------------------------------------
# --trace / --trace-chrome
# ----------------------------------------------------------------------
def test_run_trace_writes_byte_identical_artifacts(tmp_path):
    first, second = tmp_path / "a.json", tmp_path / "b.json"
    for path in (first, second):
        assert main(["run", "--preset", "smoke", "--backend", "sim",
                     "--quiet", "--trace", str(path)]) == 0
    assert first.read_bytes() == second.read_bytes()
    data = json.loads(first.read_text())
    assert data["schema"] == 1
    assert data["span_count"] > 0
    assert data["dropped_spans"] == 0


def test_run_trace_chrome_is_perfetto_loadable(tmp_path, capsys):
    trace, chrome = tmp_path / "t.json", tmp_path / "t.chrome.json"
    assert main(["run", "--preset", "smoke", "--backend", "sim",
                 "--trace", str(trace),
                 "--trace-chrome", str(chrome)]) == 0
    out = capsys.readouterr().out
    assert str(trace) in out and str(chrome) in out
    events = json.loads(chrome.read_text())["traceEvents"]
    assert events and all(e["ph"] == "X" for e in events)
    assert {e["name"] for e in events} >= {"client.request",
                                           "owner.lead"}


def test_run_trace_both_backends_suffixes_files(tmp_path):
    out = tmp_path / "trace.json"
    assert main(["run", "--preset", "smoke", "--backend", "both",
                 "--quiet", "--trace", str(out)]) == 0
    for backend in ("sim", "tcp"):
        path = tmp_path / f"trace.{backend}.json"
        assert path.exists(), f"missing {path}"
        assert json.loads(path.read_text())["span_count"] > 0
    assert not out.exists()


def test_run_trace_sample_zero_records_nothing(tmp_path):
    out = tmp_path / "empty.json"
    assert main(["run", "--preset", "smoke", "--backend", "sim",
                 "--quiet", "--trace", str(out),
                 "--trace-sample", "0.0"]) == 0
    data = json.loads(out.read_text())
    assert data["span_count"] == 0 and data["spans"] == []
