"""The ``python -m repro`` CLI, driven in-process through main()."""

import json

import pytest

from repro.__main__ import main


def test_list_protocols(capsys):
    assert main(["list-protocols"]) == 0
    out = capsys.readouterr().out
    for protocol in ("ezbft", "pbft", "zyzzyva", "fab"):
        assert protocol in out
    assert "leaderless" in out


def test_list_presets(capsys):
    assert main(["list-presets"]) == 0
    out = capsys.readouterr().out
    assert "smoke" in out
    assert "figure6-smoke" in out
    assert "crash-recovery" in out


def test_run_smoke_sim_with_json(tmp_path, capsys):
    out_path = tmp_path / "report.json"
    assert main(["run", "--preset", "smoke", "--backend", "sim",
                 "--json", str(out_path)]) == 0
    stdout = capsys.readouterr().out
    assert "fast path" in stdout
    data = json.loads(out_path.read_text())
    assert data["backend"] == "sim"
    assert data["totals"]["delivered"] == 12
    phase = data["phases"][0]
    assert phase["throughput_per_sec"] > 0
    assert phase["latency"]["p50_ms"] is not None


def test_run_both_backends_json_keyed_by_backend(tmp_path):
    out_path = tmp_path / "both.json"
    assert main(["run", "--preset", "smoke", "--backend", "both",
                 "--quiet", "--json", str(out_path)]) == 0
    data = json.loads(out_path.read_text())
    assert set(data) == {"sim", "tcp"}
    for backend, report in data.items():
        assert report["backend"] == backend
        assert report["totals"]["delivered"] == 12
        assert report["phases"][0]["fast_path_ratio"] == 1.0


def test_run_protocol_and_seed_overrides(tmp_path):
    out_path = tmp_path / "pbft.json"
    assert main(["run", "--preset", "smoke", "--backend", "sim",
                 "--protocol", "pbft", "--seed", "77", "--quiet",
                 "--json", str(out_path)]) == 0
    data = json.loads(out_path.read_text())
    assert data["protocol"] == "pbft"
    assert data["seed"] == 77


def test_run_unknown_preset_fails_cleanly(capsys):
    assert main(["run", "--preset", "nope"]) == 2
    assert "unknown preset" in capsys.readouterr().err


def test_compare_across_protocols(tmp_path, capsys):
    out_path = tmp_path / "compare.json"
    assert main(["compare", "--preset", "smoke",
                 "--protocols", "ezbft,pbft",
                 "--json", str(out_path)]) == 0
    out = capsys.readouterr().out
    assert "ezbft" in out and "pbft" in out
    data = json.loads(out_path.read_text())
    assert set(data) == {"ezbft", "pbft"}
    assert all(r["totals"]["delivered"] == 12 for r in data.values())


def test_compare_unknown_protocol_fails_cleanly(capsys):
    assert main(["compare", "--preset", "smoke",
                 "--protocols", "raft"]) == 2
    assert "unknown protocol" in capsys.readouterr().err
