"""Pluggable state machines: CounterMachine/BankMachine units plus the
``statemachine_factory`` extension point of ``build_cluster``."""

import pytest

from helpers import DeliveryLog, lan_cluster

from repro.errors import StateMachineError
from repro.protocols.registry import available_protocols
from repro.sim.network import CpuModel
from repro.statemachine.bank import BankMachine
from repro.statemachine.base import Command
from repro.statemachine.counter import CounterMachine


def cmd(op, key="k", value=None, ts=1):
    return Command(client_id="c0", timestamp=ts, op=op, key=key,
                   value=value)


# ----------------------------------------------------------------------
# CounterMachine
# ----------------------------------------------------------------------
def test_counter_incr_and_get():
    sm = CounterMachine()
    assert sm.apply(cmd("incr", value=3)) == "OK"
    assert sm.apply(cmd("incr")) == "OK"  # default delta 1
    assert sm.apply(cmd("get")) == 4
    assert sm.value("k") == 4
    assert sm.value("missing") == 0


def test_counter_speculative_overlay_and_rollback():
    sm = CounterMachine()
    sm.apply(cmd("incr", value=10))
    assert sm.apply_speculative(cmd("incr", value=5)) == "OK"
    assert sm.speculative_value("k") == 15
    assert sm.value("k") == 10  # final state untouched
    sm.rollback_speculative()
    assert sm.speculative_value("k") == 10
    assert sm.rollbacks == 1


def test_counter_snapshot_restore():
    sm = CounterMachine()
    sm.apply(cmd("incr", value=7))
    snap = sm.snapshot()
    sm.apply(cmd("incr", value=1))
    sm.apply_speculative(cmd("incr", value=99))
    sm.restore(snap)
    assert sm.final_items() == {"k": 7}
    assert sm.speculative_items() == {"k": 7}


def test_counter_rejects_unknown_ops_and_bad_deltas():
    sm = CounterMachine()
    with pytest.raises(StateMachineError):
        sm.apply(cmd("put", value="x"))
    with pytest.raises(StateMachineError):
        sm.apply(cmd("incr", value="not-an-int"))
    assert sm.apply(cmd("noop")) is None


# ----------------------------------------------------------------------
# BankMachine
# ----------------------------------------------------------------------
def test_bank_deposit_withdraw_balance():
    sm = BankMachine()
    assert sm.apply(cmd("deposit", key="acct", value=100)) == "OK"
    assert sm.apply(cmd("withdraw", key="acct", value=30)) == "OK"
    assert sm.apply(cmd("balance", key="acct")) == 70
    assert sm.balance("acct") == 70


def test_bank_rejects_overdraft_without_state_change():
    sm = BankMachine()
    sm.apply(cmd("deposit", key="acct", value=10))
    assert sm.apply(cmd("withdraw", key="acct", value=11)) == \
        "INSUFFICIENT"
    assert sm.balance("acct") == 10
    assert sm.rejected_withdrawals == 1


def test_bank_speculative_overlay():
    sm = BankMachine()
    sm.apply(cmd("deposit", key="a", value=50))
    assert sm.apply_speculative(cmd("withdraw", key="a", value=20)) == \
        "OK"
    assert sm.speculative_balance("a") == 30
    assert sm.balance("a") == 50
    sm.rollback_speculative()
    assert sm.speculative_balance("a") == 50


def test_bank_validates_amounts():
    sm = BankMachine()
    with pytest.raises(StateMachineError):
        sm.apply(cmd("deposit", key="a", value=-5))
    with pytest.raises(StateMachineError):
        sm.apply(cmd("deposit", key="a", value="ten"))
    with pytest.raises(StateMachineError):
        sm.apply(cmd("put", key="a", value=1))


# ----------------------------------------------------------------------
# statemachine_factory plumbing
# ----------------------------------------------------------------------
def test_build_cluster_with_counter_machine():
    """The acceptance-criteria scenario: a counter service on ezBFT with
    zero builder edits."""
    cluster = lan_cluster("ezbft", cpu=CpuModel.free(),
                          statemachine_factory=CounterMachine)
    log = DeliveryLog()
    client = cluster.add_client("c0", region="local",
                                on_delivery=log.hook("c0"))
    for _ in range(3):
        client.submit(client.next_command("incr", "hits", 2))
    cluster.run_until_idle()
    assert log.results == ["OK"] * 3
    for sm in cluster.statemachines().values():
        assert isinstance(sm, CounterMachine)
        assert sm.speculative_value("hits") == 6


@pytest.mark.parametrize("protocol", available_protocols())
def test_bank_machine_on_every_protocol(protocol):
    cluster = lan_cluster(protocol, cpu=CpuModel.free(),
                          statemachine_factory=BankMachine)
    log = DeliveryLog()
    client = cluster.add_client("c0", region="local",
                                on_delivery=log.hook("c0"))
    client.submit(client.next_command("deposit", "acct", 100))
    cluster.run_until_idle()
    client.submit(client.next_command("withdraw", "acct", 40))
    cluster.run_until_idle()
    assert log.results == ["OK", "OK"]
    balances = {
        rid: sm.speculative_balance("acct")
        for rid, sm in cluster.statemachines().items()
    }
    agreeing = [b for b in balances.values() if b == 60]
    assert len(agreeing) >= cluster.config.slow_quorum_size, balances
