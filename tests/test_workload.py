"""Workload generator and driver tests."""

import pytest

from repro.workload.drivers import ClosedLoopDriver, OpenLoopDriver
from repro.workload.generator import KVWorkload

from helpers import DeliveryLog, lan_cluster


def test_zero_contention_uses_private_keys():
    cluster = lan_cluster()
    client = cluster.add_client("c0", "local")
    workload = KVWorkload("c0", contention=0.0, seed=1)
    keys = {workload.next_op(client).key for _ in range(20)}
    assert all(k.startswith("c0/") for k in keys)
    assert len(keys) == 20  # fresh key per request
    assert workload.hot_requests == 0


def test_full_contention_always_hot():
    cluster = lan_cluster()
    client = cluster.add_client("c0", "local")
    workload = KVWorkload("c0", contention=1.0, seed=1)
    keys = {workload.next_op(client).key for _ in range(20)}
    assert keys == {workload.hot_key}


def test_partial_contention_fraction():
    cluster = lan_cluster()
    client = cluster.add_client("c0", "local")
    workload = KVWorkload("c0", contention=0.3, seed=42)
    for _ in range(1000):
        workload.next_op(client)
    fraction = workload.hot_requests / workload.total_requests
    assert fraction == pytest.approx(0.3, abs=0.05)


def test_invalid_contention_rejected():
    with pytest.raises(ValueError):
        KVWorkload("c0", contention=1.5)


def test_value_size():
    cluster = lan_cluster()
    client = cluster.add_client("c0", "local")
    workload = KVWorkload("c0", value_size=16, seed=1)
    command = workload.next_op(client)
    assert len(command.value) == 16


def test_closed_loop_driver_completes():
    cluster = lan_cluster()
    log = DeliveryLog()
    client = cluster.add_client("c0", "local",
                                on_delivery=log.hook("c0"))
    workload = KVWorkload("c0", contention=0.0, seed=1)
    driver = ClosedLoopDriver(client, workload, num_requests=10)
    driver.start()
    cluster.run_until_idle()
    assert driver.done
    assert driver.completed == 10
    assert len(log.records) == 10


def test_closed_loop_one_at_a_time():
    """Closed loop never has more than one request in flight."""
    cluster = lan_cluster()
    client = cluster.add_client("c0", "local")
    max_in_flight = 0
    original_submit = client.submit

    def tracking_submit(command):
        nonlocal max_in_flight
        original_submit(command)
        max_in_flight = max(max_in_flight, client.in_flight)

    client.submit = tracking_submit
    driver = ClosedLoopDriver(client, KVWorkload("c0", seed=1),
                              num_requests=5)
    driver.start()
    cluster.run_until_idle()
    assert max_in_flight == 1


def test_closed_loop_think_time_spreads_requests():
    cluster = lan_cluster()
    client = cluster.add_client("c0", "local")
    driver = ClosedLoopDriver(client, KVWorkload("c0", seed=1),
                              num_requests=3, think_time_ms=100.0)
    driver.start()
    cluster.run_until_idle()
    assert driver.done
    assert cluster.sim.now >= 200.0  # two think gaps


def test_open_loop_driver_issues_at_rate():
    cluster = lan_cluster()
    log = DeliveryLog()
    client = cluster.add_client("c0", "local",
                                on_delivery=log.hook("c0"))
    driver = OpenLoopDriver(client, KVWorkload("c0", seed=1),
                            rate_per_sec=1000.0, duration_ms=100.0)
    driver.start()
    cluster.run_until_idle()
    # 100ms at 1 req/ms -> about 100 requests (first tick at t=0).
    assert driver.issued == pytest.approx(100, abs=2)
    assert len(log.records) == driver.issued


def test_open_loop_invalid_rate():
    cluster = lan_cluster()
    client = cluster.add_client("c0", "local")
    with pytest.raises(ValueError):
        OpenLoopDriver(client, KVWorkload("c0"), rate_per_sec=0,
                       duration_ms=10)


def test_issue_pacer_catches_up_after_late_tick():
    """Token-bucket pacing: a tick that fires late (wall-clock timer
    drift on the TCP backend) issues every request whose due-time has
    passed, so the long-run rate matches the configured one instead of
    sagging."""
    from repro.workload.drivers import _IssuePacer

    pacer = _IssuePacer(10.0)
    pacer.start(0.0)
    # The tick lands 35ms in: credits for t=0, 10, 20, 30 are due.
    drained = 0
    while pacer.due(35.0):
        pacer.consume()
        drained += 1
    assert drained == 4
    # Next credit accrues at t=40 -> sleep 5ms, not a full interval.
    assert pacer.delay_until_next(35.0) == 5.0
    # On-time ticks issue exactly one per interval (simulator path).
    assert pacer.due(40.0)
    pacer.consume()
    assert not pacer.due(40.0)
    assert pacer.delay_until_next(40.0) == 10.0


def test_open_loop_rate_exact_on_simulator():
    """The pacer must not change simulator behaviour: the issue count
    over a window is exactly rate x duration."""
    cluster = lan_cluster()
    client = cluster.add_client("c0", "local")
    driver = OpenLoopDriver(client, KVWorkload("c0", seed=1),
                            rate_per_sec=250.0, duration_ms=200.0)
    driver.start()
    cluster.run_until_idle()
    assert driver.issued == 50  # 250/s x 0.2s, first at t=0


def test_open_loop_respects_outstanding_cap():
    cluster = lan_cluster()
    client = cluster.add_client("c0", "local")
    driver = OpenLoopDriver(client, KVWorkload("c0", seed=1),
                            rate_per_sec=10_000.0, duration_ms=50.0,
                            max_outstanding=1)
    driver.start()
    cluster.run_until_idle()
    assert driver.skipped > 0
    assert client.in_flight == 0  # everything issued was served
