"""Unit tests for ProtocolConfig quorum and rotation math."""

import pytest

from repro.config import ProtocolConfig
from repro.errors import ConfigurationError


def make(n=4, **kwargs):
    return ProtocolConfig(replica_ids=tuple(f"r{i}" for i in range(n)),
                          **kwargs)


def test_four_replicas_tolerate_one_fault():
    config = make(4)
    assert config.f == 1
    assert config.fast_quorum_size == 4
    assert config.slow_quorum_size == 3
    assert config.weak_quorum_size == 2


def test_seven_replicas_tolerate_two_faults():
    config = make(7)
    assert config.f == 2
    assert config.fast_quorum_size == 7
    assert config.slow_quorum_size == 5
    assert config.weak_quorum_size == 3


def test_ten_replicas_f3():
    config = make(10)
    assert config.f == 3
    assert config.slow_quorum_size == 7


def test_too_few_replicas_rejected():
    with pytest.raises(ConfigurationError):
        make(3)


def test_duplicate_ids_rejected():
    with pytest.raises(ConfigurationError):
        ProtocolConfig(replica_ids=("r0", "r0", "r1", "r2"))


def test_index_of_and_unknown():
    config = make(4)
    assert config.index_of("r2") == 2
    with pytest.raises(ConfigurationError):
        config.index_of("r9")


def test_initial_owner_numbers_match_indices():
    config = make(4)
    for i in range(4):
        assert config.initial_owner_number(f"r{i}") == i


def test_owner_rotation_wraps():
    config = make(4)
    assert config.owner_for_number(0) == "r0"
    assert config.owner_for_number(1) == "r1"
    assert config.owner_for_number(5) == "r1"
    # Owner change for r1's space: O=1 -> O'=2 -> r2 takes over.
    assert config.owner_for_number(
        config.initial_owner_number("r1") + 1) == "r2"


def test_primary_rotation():
    config = make(4)
    assert config.primary_for_view(0) == "r0"
    assert config.primary_for_view(7) == "r3"


def test_slow_quorum_includes_leader_and_is_deterministic():
    config = make(4)
    quorum = config.slow_quorum_for("r2")
    assert quorum == ("r2", "r3", "r0")
    assert len(quorum) == config.slow_quorum_size
    assert config.slow_quorum_for("r2") == quorum


def test_slow_quorum_every_leader():
    config = make(7)
    for rid in config.replica_ids:
        quorum = config.slow_quorum_for(rid)
        assert rid in quorum
        assert len(set(quorum)) == config.slow_quorum_size


def test_others_excludes_self():
    config = make(4)
    assert config.others("r1") == ("r0", "r2", "r3")


def test_timeouts_carried():
    config = make(4, slow_path_timeout=111.0, retry_timeout=222.0)
    assert config.slow_path_timeout == 111.0
    assert config.retry_timeout == 222.0
