"""ezBFT slow-path behaviour under contention (paper Section IV-C)."""

import pytest

from repro.core.instance import EntryStatus
from repro.statemachine.interference import AlwaysInterfere

from helpers import (
    DeliveryLog,
    assert_histories_consistent,
    assert_replicas_consistent,
    geo_cluster,
    lan_cluster,
)


def two_conflicting_clients(cluster):
    log = DeliveryLog()
    c0 = cluster.add_client("c0", cluster.replica_regions["r0"],
                            target_replica="r0",
                            on_delivery=log.hook("c0"))
    c1 = cluster.add_client("c1", cluster.replica_regions["r3"],
                            target_replica="r3",
                            on_delivery=log.hook("c1"))
    c0.submit(c0.next_command("put", "hot", "from-c0"))
    c1.submit(c1.next_command("put", "hot", "from-c1"))
    return log, c0, c1


def test_conflicting_concurrent_commands_commit_consistently():
    cluster = geo_cluster()
    log, _, _ = two_conflicting_clients(cluster)
    cluster.run_until_idle()
    assert len(log.records) == 2
    state = assert_replicas_consistent(cluster)
    assert state["hot"] in ("from-c0", "from-c1")
    assert_histories_consistent(cluster)


def test_conflicting_commands_take_slow_path_in_geo():
    """With WAN latencies the two SPECORDERs genuinely interleave, so
    replicas disagree on dependency sets and the clients must combine."""
    cluster = geo_cluster()
    log, _, _ = two_conflicting_clients(cluster)
    cluster.run_until_idle()
    assert "slow" in log.paths


def test_slow_path_commit_metadata_is_final():
    cluster = geo_cluster()
    log, c0, c1 = two_conflicting_clients(cluster)
    cluster.run_until_idle()
    # Whichever command committed second must depend on the first.
    deps_by_replica = []
    for replica in cluster.replicas.values():
        entries = {e.instance: e
                   for space in replica.spaces.values()
                   for e in space.entries()}
        assert len(entries) == 2
        deps_union = set()
        for e in entries.values():
            deps_union.update(e.deps)
        deps_by_replica.append(deps_union)
    # At least one direction of the dependency must be recorded
    # everywhere the command committed.
    assert all(deps for deps in deps_by_replica)


def test_dependency_cycle_resolved_deterministically():
    """The paper's Figure-2 scenario: both commands end up in each
    other's dependency set; sequence numbers + replica ids break the
    cycle identically at every replica."""
    cluster = geo_cluster()
    log, _, _ = two_conflicting_clients(cluster)
    cluster.run_until_idle()
    assert_histories_consistent(cluster)
    state = assert_replicas_consistent(cluster)
    # The executed order must be the same everywhere, so the final value
    # is whichever command every replica executed last.
    histories = [r.executor.history for r in cluster.replicas.values()]
    last_idents = {tuple(h[-1][1] for h in histories)}
    assert len(last_idents) == 1


def test_interfering_sequence_numbers_strictly_increase():
    cluster = lan_cluster()
    client = cluster.add_client("c0", "local")
    for i in range(4):
        client.submit(client.next_command("put", "hot", i))
        cluster.run_until_idle()
    leader = cluster.replicas[client.target_replica]
    seqs = [e.seq for e in leader.spaces[leader.node_id].entries()]
    assert seqs == sorted(seqs)
    assert len(set(seqs)) == len(seqs)


def test_always_interfere_relation_forces_total_order():
    cluster = lan_cluster(interference=AlwaysInterfere())
    log = DeliveryLog()
    clients = []
    for i in range(4):
        c = cluster.add_client(f"c{i}", "local", target_replica=f"r{i}",
                               on_delivery=log.hook(f"c{i}"))
        clients.append(c)
        c.submit(c.next_command("put", f"key{i}", i))
    cluster.run_until_idle()
    assert len(log.records) == 4
    assert_replicas_consistent(cluster)
    assert_histories_consistent(cluster)


def test_slow_path_produces_commit_replies():
    cluster = geo_cluster()
    log, c0, c1 = two_conflicting_clients(cluster)
    cluster.run_until_idle()
    slow_count = sum(1 for p in log.paths if p == "slow")
    committed_slow = sum(r.stats["committed_slow"]
                        for r in cluster.replicas.values())
    assert committed_slow >= slow_count  # each slow commit hit replicas


def test_many_interleaved_conflicts_converge():
    cluster = geo_cluster()
    log = DeliveryLog()
    drivers = []
    from repro.workload.drivers import ClosedLoopDriver
    from repro.workload.generator import KVWorkload

    for i in range(4):
        region = cluster.replica_regions[f"r{i}"]
        client = cluster.add_client(f"c{i}", region,
                                    on_delivery=log.hook(f"c{i}"))
        workload = KVWorkload(f"c{i}", contention=1.0, seed=i)
        driver = ClosedLoopDriver(client, workload, num_requests=5)
        drivers.append(driver)
    for driver in drivers:
        driver.start()
    cluster.run_until_idle()
    assert all(d.done for d in drivers)
    assert len(log.records) == 20
    assert_replicas_consistent(cluster)
    assert_histories_consistent(cluster)


def test_mixed_contention_some_fast_some_slow():
    cluster = geo_cluster()
    log = DeliveryLog()
    from repro.workload.drivers import ClosedLoopDriver
    from repro.workload.generator import KVWorkload

    drivers = []
    for i in range(4):
        region = cluster.replica_regions[f"r{i}"]
        client = cluster.add_client(f"c{i}", region,
                                    on_delivery=log.hook(f"c{i}"))
        workload = KVWorkload(f"c{i}", contention=0.5, seed=100 + i)
        drivers.append(ClosedLoopDriver(client, workload,
                                        num_requests=6))
    for driver in drivers:
        driver.start()
    cluster.run_until_idle()
    assert len(log.records) == 24
    assert "fast" in log.paths
    assert_replicas_consistent(cluster)
