"""CLI, pragma, baseline, and report-schema tests for repro.analysis.

The checker semantics themselves (which lines each rule flags) live in
``tests/test_analysis_checkers.py``; this file pins the *surfaces*:
``python -m repro lint`` exit codes, the pragma and baseline
suppression machinery, and the JSON report schema that CI uploads as
an artifact.
"""

import json
import textwrap

import pytest

from repro.__main__ import main
from repro.analysis.baseline import (
    BaselineEntry,
    apply_baseline,
    load_baseline,
    save_baseline,
)
from repro.analysis.engine import repo_root, run_lint
from repro.analysis.findings import Finding
from repro.analysis.pragmas import is_allowed, parse_pragmas
from repro.analysis.reporters import JSON_SCHEMA_VERSION
from repro.errors import ConfigurationError

ALL_RULE_IDS = {
    "wall-clock", "global-random", "salted-hash",
    "dangling-task", "event-loop", "blocking-async",
    "frozen-mutation",
    "key-reach", "digest-outside-crypto",
    "quorum-literal",
    "wire-parity",
    "fs-outside-storage",
}


def write_snippet(tmp_path, relpath, code):
    target = tmp_path / relpath
    target.parent.mkdir(parents=True, exist_ok=True)
    target.write_text(textwrap.dedent(code), encoding="utf-8")
    return target


# ---------------------------------------------------------------------------
# pragmas


def test_pragma_same_line():
    allowed = parse_pragmas([
        "import time",
        "t = time.time()  # repro: allow[wall-clock]",
    ])
    assert is_allowed(allowed, 2, "wall-clock")
    assert not is_allowed(allowed, 2, "global-random")
    assert not is_allowed(allowed, 1, "wall-clock")


def test_pragma_comment_line_covers_next_code_line():
    allowed = parse_pragmas([
        "# repro: allow[wall-clock] -- reporting-only stopwatch",
        "t = time.time()",
        "u = time.time()",
    ])
    assert is_allowed(allowed, 2, "wall-clock")
    assert not is_allowed(allowed, 3, "wall-clock")


def test_pragma_carries_through_comment_chains():
    allowed = parse_pragmas([
        "# repro: allow[wall-clock]",
        "# second explanatory comment line",
        "t = time.time()",
    ])
    assert is_allowed(allowed, 3, "wall-clock")


def test_pragma_multiple_ids_and_wildcard():
    allowed = parse_pragmas([
        "x()  # repro: allow[wall-clock, global-random]",
        "y()  # repro: allow[*]",
    ])
    assert is_allowed(allowed, 1, "wall-clock")
    assert is_allowed(allowed, 1, "global-random")
    assert not is_allowed(allowed, 1, "salted-hash")
    assert is_allowed(allowed, 2, "anything-at-all")


def test_pragma_suppresses_finding_and_is_counted(tmp_path):
    write_snippet(tmp_path, "src/repro/core/clock.py", """\
        import time

        def now():
            return time.time()  # repro: allow[wall-clock] -- test
    """)
    report = run_lint(paths=["src/repro/core/clock.py"],
                      root=str(tmp_path))
    assert report.findings == []
    assert report.pragma_suppressed == 1


def test_pragma_for_wrong_rule_does_not_suppress(tmp_path):
    write_snippet(tmp_path, "src/repro/core/clock.py", """\
        import time

        def now():
            return time.time()  # repro: allow[global-random]
    """)
    report = run_lint(paths=["src/repro/core/clock.py"],
                      root=str(tmp_path))
    assert [f.rule for f in report.findings] == ["wall-clock"]
    assert report.pragma_suppressed == 0


# ---------------------------------------------------------------------------
# baseline


def _finding(rule="wall-clock", path="src/repro/core/x.py", line=3,
             message="m"):
    return Finding(rule=rule, path=path, line=line, col=0,
                   message=message)


def test_baseline_absorbs_by_rule_path_message_not_line():
    entries = [BaselineEntry(rule="wall-clock",
                             path="src/repro/core/x.py", message="m")]
    match = apply_baseline([_finding(line=99)], entries)
    assert match.new == []
    assert len(match.absorbed) == 1
    assert match.stale == []


def test_baseline_multiplicity_one_entry_absorbs_one_finding():
    entries = [BaselineEntry(rule="wall-clock",
                             path="src/repro/core/x.py", message="m")]
    match = apply_baseline([_finding(line=3), _finding(line=8)],
                           entries)
    assert len(match.absorbed) == 1
    assert len(match.new) == 1


def test_baseline_reports_stale_entries():
    entries = [BaselineEntry(rule="wall-clock",
                             path="src/repro/core/gone.py",
                             message="fixed long ago")]
    match = apply_baseline([], entries)
    assert match.stale == entries


def test_baseline_round_trip(tmp_path):
    path = str(tmp_path / "bl.json")
    findings = [_finding(line=3), _finding(rule="key-reach",
                                           message="other")]
    save_baseline(path, findings)
    entries = load_baseline(path)
    assert {e.key() for e in entries} == \
        {f.baseline_key() for f in findings}


@pytest.mark.parametrize("content,phrase", [
    ("not json {", "not valid JSON"),
    ('{"version": 99, "entries": []}', "version"),
    ('{"version": 1, "entries": [{"rule": "x"}]}', "malformed"),
    ('{"version": 1}', "entries"),
])
def test_baseline_load_rejects_malformed(tmp_path, content, phrase):
    path = tmp_path / "bl.json"
    path.write_text(content, encoding="utf-8")
    with pytest.raises(ConfigurationError, match=phrase):
        load_baseline(str(path))


def test_baseline_missing_file_is_configuration_error(tmp_path):
    with pytest.raises(ConfigurationError, match="not found"):
        load_baseline(str(tmp_path / "nope.json"))


# ---------------------------------------------------------------------------
# python -m repro lint: exit codes and wiring


def test_lint_self_check_repo_tree_is_clean(capsys):
    # The acceptance gate: the shipped tree lints clean without any
    # baseline (sanctioned exceptions carry inline pragmas).
    assert main(["lint"]) == 0
    out = capsys.readouterr().out
    assert "0 finding(s)" in out


def test_lint_with_committed_baseline_is_clean(capsys):
    assert main(["lint", "--baseline"]) == 0


def test_committed_baseline_has_no_stale_entries():
    entries = load_baseline(str(repo_root() / "lint-baseline.json"))
    report = run_lint()
    match = apply_baseline(report.findings, entries)
    assert match.stale == []


BAD_FIXTURES = {
    "wall-clock": "import time\nt = time.time()\n",
    "global-random": "import random\nx = random.random()\n",
    "dangling-task":
        "import asyncio\n\n\nasync def go(c):\n"
        "    asyncio.create_task(c())\n",
    "frozen-mutation":
        "def poke(msg):\n"
        "    object.__setattr__(msg, 'sender', 'evil')\n",
    "key-reach":
        "def leak(registry, node):\n"
        "    return registry._keys[node]\n",
    "quorum-literal":
        "def ready(votes, f):\n"
        "    return len(votes) >= 2 * f + 1\n",
}


@pytest.mark.parametrize("rule", sorted(BAD_FIXTURES))
def test_lint_cli_exits_one_on_bad_fixture(tmp_path, capsys, rule):
    bad = write_snippet(tmp_path, "src/repro/core/bad.py",
                        BAD_FIXTURES[rule])
    assert main(["lint", str(bad)]) == 1
    out = capsys.readouterr().out
    assert f"[{rule}]" in out


def test_lint_unknown_rule_exits_two_naming_available(capsys):
    assert main(["lint", "--rule", "no-such-rule"]) == 2
    err = capsys.readouterr().err
    assert "no-such-rule" in err
    assert "wall-clock" in err


def test_lint_missing_path_exits_two(capsys):
    assert main(["lint", "does/not/exist.py"]) == 2
    assert "does not exist" in capsys.readouterr().err


def test_lint_rule_filter_restricts_output(tmp_path, capsys):
    bad = write_snippet(tmp_path, "src/repro/core/bad.py", """\
        import time
        import random
        t = time.time()
        r = random.random()
    """)
    assert main(["lint", str(bad), "--rule", "global-random"]) == 1
    out = capsys.readouterr().out
    assert "[global-random]" in out
    assert "[wall-clock]" not in out


def test_lint_list_rules_covers_every_rule(capsys):
    assert main(["lint", "--list-rules"]) == 0
    out = capsys.readouterr().out
    for rule in ALL_RULE_IDS:
        assert rule in out


def test_write_baseline_then_baseline_run_is_clean(tmp_path, capsys):
    bad = write_snippet(tmp_path, "src/repro/core/bad.py",
                        "import time\nt = time.time()\n")
    bl = str(tmp_path / "bl.json")
    assert main(["lint", str(bad), "--write-baseline", bl]) == 0
    assert "wrote 1 entry" in capsys.readouterr().out

    assert main(["lint", str(bad), "--baseline", bl]) == 0
    assert "1 baselined" in capsys.readouterr().out

    # Pay the debt down: the entry goes stale but does not fail the
    # run; the report says to prune it.
    bad.write_text("t = 0\n", encoding="utf-8")
    assert main(["lint", str(bad), "--baseline", bl]) == 0
    assert "stale baseline entry" in capsys.readouterr().out


# ---------------------------------------------------------------------------
# __main__ wiring (the PR's bugfix satellite)


def test_help_lists_lint(capsys):
    with pytest.raises(SystemExit) as exc:
        main(["--help"])
    assert exc.value.code == 0
    assert "lint" in capsys.readouterr().out


def test_unknown_subcommand_exits_two_naming_choices(capsys):
    with pytest.raises(SystemExit) as exc:
        main(["frobnicate"])
    assert exc.value.code == 2
    err = capsys.readouterr().err
    assert "frobnicate" in err
    assert "lint" in err and "run" in err


# ---------------------------------------------------------------------------
# JSON report schema (CI artifact contract)


def run_json(argv, capsys):
    code = main(argv)
    return code, json.loads(capsys.readouterr().out)


def test_json_schema_top_level_keys(capsys):
    code, payload = run_json(["lint", "--format", "json"], capsys)
    assert code == 0
    assert set(payload) == {
        "schema_version", "rules", "files_scanned", "findings",
        "suppressed", "stale_baseline", "exit_code",
    }
    assert payload["schema_version"] == JSON_SCHEMA_VERSION
    assert payload["exit_code"] == 0
    assert payload["findings"] == []
    assert set(payload["suppressed"]) == {"pragma", "baseline"}
    assert payload["suppressed"]["pragma"] >= 1  # runner stopwatch
    assert payload["files_scanned"] > 50
    assert {r["id"] for r in payload["rules"]} == ALL_RULE_IDS
    for rule in payload["rules"]:
        assert set(rule) == {"id", "summary", "motivation"}


def test_json_finding_entry_shape(tmp_path, capsys):
    bad = write_snippet(tmp_path, "src/repro/core/bad.py",
                        "import time\nt = time.time()\n")
    code, payload = run_json(
        ["lint", str(bad), "--format", "json"], capsys)
    assert code == 1
    assert payload["exit_code"] == 1
    (finding,) = payload["findings"]
    assert set(finding) == {"rule", "path", "line", "col", "message"}
    assert finding["rule"] == "wall-clock"
    assert finding["line"] == 2


def test_json_reports_baseline_suppression(tmp_path, capsys):
    bad = write_snippet(tmp_path, "src/repro/core/bad.py",
                        "import time\nt = time.time()\n")
    bl = str(tmp_path / "bl.json")
    assert main(["lint", str(bad), "--write-baseline", bl]) == 0
    capsys.readouterr()
    code, payload = run_json(
        ["lint", str(bad), "--baseline", bl, "--format", "json"],
        capsys)
    assert code == 0
    assert payload["findings"] == []
    assert payload["suppressed"]["baseline"] == 1
    assert payload["stale_baseline"] == []
