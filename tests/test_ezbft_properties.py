"""End-to-end checks of the paper's four protocol properties
(Section III): nontriviality, stability, consistency, liveness --
over randomized workloads and fault patterns."""

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.byzantine import (
    DepSuppressingReplica,
    SilentReplica,
    install_byzantine,
)
from repro.core.instance import EntryStatus
from repro.workload.drivers import ClosedLoopDriver
from repro.workload.generator import KVWorkload

from helpers import (
    DeliveryLog,
    assert_histories_consistent,
    assert_replicas_consistent,
    geo_cluster,
    lan_cluster,
)


def run_workload(cluster, num_clients=4, requests_each=4,
                 contention=0.5, seed=0):
    log = DeliveryLog()
    drivers = []
    for i in range(num_clients):
        rid = f"r{i % len(cluster.config.replica_ids)}"
        region = cluster.replica_regions[rid]
        client = cluster.add_client(f"c{i}", region, target_replica=rid,
                                    on_delivery=log.hook(f"c{i}"))
        workload = KVWorkload(f"c{i}", contention=contention,
                              seed=seed * 100 + i)
        drivers.append(ClosedLoopDriver(client, workload,
                                        num_requests=requests_each))
    for driver in drivers:
        driver.start()
    cluster.run_until_idle()
    return log, drivers


def all_proposed_idents(cluster):
    idents = set()
    for client in cluster.clients.values():
        for t in range(1, client._next_timestamp):
            idents.add((client.client_id, t))
    return idents


@settings(deadline=None, max_examples=10,
          suppress_health_check=[HealthCheck.too_slow])
@given(contention=st.sampled_from([0.0, 0.3, 1.0]),
       seed=st.integers(min_value=0, max_value=50))
def test_nontriviality_and_consistency_random_workloads(contention,
                                                        seed):
    cluster = geo_cluster()
    log, drivers = run_workload(cluster, contention=contention,
                                seed=seed)
    assert all(d.done for d in drivers)
    # Nontriviality: every executed command was proposed by a client.
    proposed = all_proposed_idents(cluster)
    for replica in cluster.replicas.values():
        for _, ident in replica.executor.history:
            assert ident in proposed or ident == ("__noop__", 0)
    # Consistency: per-instance agreement + execution order agreement.
    per_instance = {}
    for replica in cluster.replicas.values():
        for space in replica.spaces.values():
            for entry in space.entries():
                if entry.status.at_least(EntryStatus.COMMITTED):
                    prev = per_instance.setdefault(
                        entry.instance, entry.command.ident)
                    assert prev == entry.command.ident
    assert_replicas_consistent(cluster)
    assert_histories_consistent(cluster)


@settings(deadline=None, max_examples=6,
          suppress_health_check=[HealthCheck.too_slow])
@given(faulty=st.sampled_from(["r0", "r1", "r2", "r3"]),
       behavior=st.sampled_from([SilentReplica, DepSuppressingReplica]))
def test_liveness_and_consistency_with_one_fault(faulty, behavior):
    cluster = lan_cluster()
    install_byzantine(cluster, faulty, behavior)
    log, drivers = run_workload(cluster, num_clients=3,
                                requests_each=3, contention=0.5, seed=1)
    # Liveness: every request eventually delivered despite the fault.
    assert all(d.done for d in drivers)
    assert len(log.records) == 9
    assert_replicas_consistent(cluster, exclude=(faulty,))
    assert_histories_consistent(cluster, exclude=(faulty,))


def test_stability_committed_entries_never_change():
    """Stability: once a replica commits L at instance I, L stays
    committed at I -- checked across an owner change."""
    cluster = lan_cluster()
    client = cluster.add_client("c0", "local", target_replica="r1")
    client.submit(client.next_command("put", "k", "v"))
    cluster.run_until_idle()
    snapshots = {}
    for rid in ("r0", "r2", "r3"):
        replica = cluster.replicas[rid]
        snapshots[rid] = {
            e.instance: e.command.ident
            for space in replica.spaces.values()
            for e in space.entries()
            if e.status.at_least(EntryStatus.COMMITTED)
        }
    # Force an owner change on r1's space.
    for rid in ("r0", "r2", "r3"):
        cluster.replicas[rid].owner_changes.suspect("r1")
    cluster.run_until_idle()
    for rid in ("r0", "r2", "r3"):
        replica = cluster.replicas[rid]
        after = {
            e.instance: e.command.ident
            for space in replica.spaces.values()
            for e in space.entries()
            if e.status.at_least(EntryStatus.COMMITTED)
        }
        for instance, ident in snapshots[rid].items():
            assert after.get(instance) == ident, (
                f"{rid} lost committed entry {instance}")


def test_executed_prefix_grows_monotonically():
    """Stability corollary: the execution history only grows."""
    cluster = lan_cluster()
    client = cluster.add_client("c0", "local")
    prefixes = []
    for i in range(4):
        client.submit(client.next_command("put", "hot", i))
        cluster.run_until_idle()
        history = list(cluster.replicas["r2"].executor.history)
        prefixes.append(history)
    for shorter, longer in zip(prefixes, prefixes[1:]):
        assert longer[:len(shorter)] == shorter
