"""ezBFT fast-path behaviour (paper Section IV-A)."""

import pytest

from repro.core.instance import EntryStatus
from repro.sim.latency import EXPERIMENT1
from repro.types import InstanceID

from helpers import (
    DeliveryLog,
    assert_replicas_consistent,
    geo_cluster,
    lan_cluster,
)


def test_single_request_takes_fast_path():
    cluster = lan_cluster()
    log = DeliveryLog()
    client = cluster.add_client("c0", "local",
                                on_delivery=log.hook("c0"))
    client.submit(client.next_command("put", "k", "v"))
    cluster.run_until_idle()
    assert log.paths == ["fast"]
    assert log.results == ["OK"]
    assert_replicas_consistent(cluster)


def test_fast_path_read_returns_value():
    cluster = lan_cluster()
    log = DeliveryLog()
    client = cluster.add_client("c0", "local",
                                on_delivery=log.hook("c0"))
    client.submit(client.next_command("put", "k", "v1"))
    cluster.run_until_idle()
    client.submit(client.next_command("get", "k"))
    cluster.run_until_idle()
    assert log.results == ["OK", "v1"]


def test_fast_path_commits_at_every_replica():
    cluster = lan_cluster()
    client = cluster.add_client("c0", "local")
    client.submit(client.next_command("put", "k", "v"))
    cluster.run_until_idle()
    for replica in cluster.replicas.values():
        assert replica.stats["committed_fast"] == 1
        assert replica.stats["committed_slow"] == 0
        assert replica.stats["executed"] == 1


def test_leader_assigns_sequential_slots():
    cluster = lan_cluster()
    client = cluster.add_client("c0", "local")
    for i in range(3):
        client.submit(client.next_command("put", f"k{i}", i))
        cluster.run_until_idle()
    leader = cluster.replicas[client.target_replica]
    space = leader.spaces[leader.node_id]
    assert [e.instance.slot for e in space.entries()] == [0, 1, 2]


def test_non_interfering_commands_all_fast():
    cluster = lan_cluster()
    log = DeliveryLog()
    clients = [cluster.add_client(f"c{i}", "local",
                                  target_replica=f"r{i}",
                                  on_delivery=log.hook(f"c{i}"))
               for i in range(4)]
    for i, client in enumerate(clients):
        client.submit(client.next_command("put", f"key{i}", i))
    cluster.run_until_idle()
    assert log.paths == ["fast"] * 4
    assert_replicas_consistent(cluster)


def test_fast_path_empty_deps_seq_one():
    """Paper's Figure-1 example: first command in an idle system gets
    D = {} and S = 1 everywhere."""
    cluster = lan_cluster()
    client = cluster.add_client("c0", "local")
    client.submit(client.next_command("put", "k", "v"))
    cluster.run_until_idle()
    for replica in cluster.replicas.values():
        entries = list(replica.spaces[client.target_replica].entries())
        assert len(entries) == 1
        assert entries[0].deps == ()
        assert entries[0].seq == 1
        assert entries[0].status == EntryStatus.EXECUTED


def test_sequential_same_key_commands_still_fast():
    """A client's own dependent history does not break the fast path:
    every replica has the previous command committed, so dependency sets
    match everywhere."""
    cluster = lan_cluster()
    log = DeliveryLog()
    client = cluster.add_client("c0", "local",
                                on_delivery=log.hook("c0"))
    for i in range(3):
        client.submit(client.next_command("put", "same-key", i))
        cluster.run_until_idle()
    assert log.paths == ["fast"] * 3
    # The later commands depend on the earlier ones.
    leader = cluster.replicas[client.target_replica]
    entries = list(leader.spaces[leader.node_id].entries())
    assert entries[1].deps == (entries[0].instance,)
    assert entries[2].seq > entries[1].seq > entries[0].seq


def test_geo_fast_path_latency_matches_wan_model():
    """Tokyo client -> local leader; slowest reply leg is via Virginia:
    0.4 + (75 + 75) ~= 151ms."""
    cluster = geo_cluster()
    log = DeliveryLog()
    client = cluster.add_client("c0", "tokyo",
                                on_delivery=log.hook("c0"))
    client.submit(client.next_command("put", "k", "v"))
    cluster.run_until_idle()
    assert log.paths == ["fast"]
    assert log.latencies()[0] == pytest.approx(151, abs=5)


def test_geo_client_targets_nearest_replica():
    cluster = geo_cluster()
    client = cluster.add_client("c0", "sydney")
    assert cluster.replica_regions[client.target_replica] == "sydney"


def test_client_exactly_once_timestamps_increase():
    cluster = lan_cluster()
    client = cluster.add_client("c0", "local")
    a = client.next_command("put", "k", 1)
    b = client.next_command("put", "k", 2)
    assert b.timestamp == a.timestamp + 1


def test_duplicate_request_returns_cached_reply():
    """Replicas drop stale timestamps and re-serve the cached reply for
    the current one (paper step 2 nitpick)."""
    cluster = lan_cluster()
    log = DeliveryLog()
    client = cluster.add_client("c0", "local",
                                on_delivery=log.hook("c0"))
    command = client.next_command("put", "k", "v")
    client.submit(command)
    cluster.run_until_idle()
    assert len(log.records) == 1
    leader = cluster.replicas[client.target_replica]
    before = leader.stats["led"]
    # Re-submit the same command object (same timestamp).
    from repro.messages.base import SignedPayload
    from repro.messages.ezbft import Request

    request = Request(command=command)
    cluster.network.send(
        "c0", client.target_replica,
        SignedPayload.create(request, client.keypair))
    cluster.run_until_idle()
    assert leader.stats["led"] == before  # not led twice


def test_all_replicas_can_lead_concurrently():
    """The leaderless property: four clients, four different leaders,
    all commands commit."""
    cluster = lan_cluster()
    log = DeliveryLog()
    for i in range(4):
        client = cluster.add_client(f"c{i}", "local",
                                    target_replica=f"r{i}",
                                    on_delivery=log.hook(f"c{i}"))
        client.submit(client.next_command("put", f"key{i}", i))
    cluster.run_until_idle()
    assert len(log.records) == 4
    led_counts = [r.stats["led"] for r in cluster.replicas.values()]
    assert led_counts == [1, 1, 1, 1]
    state = assert_replicas_consistent(cluster)
    assert state == {f"key{i}": i for i in range(4)}
