"""Scenario execution on the asyncio TCP backend (real localhost
sockets, OS-assigned ports)."""

import pytest

from repro.errors import ConfigurationError
from repro.scenario import (
    CrashReplica,
    LatencyShift,
    RecoverReplica,
    Scenario,
    ScenarioRunner,
    WorkloadSpec,
    preset,
)


def test_smoke_scenario_runs_over_tcp():
    scenario = preset("smoke")
    assert "tcp" in scenario.backends
    report = ScenarioRunner(backend="tcp").run(scenario)
    assert report.backend == "tcp"
    # 1 distinct region x 2 clients x 6 requests, all delivered.
    assert report.delivered == 12
    assert report.fast_path_ratio == 1.0
    assert report.network["frames_received"] > 0
    data = report.to_dict()
    phase = data["phases"][0]
    assert phase["latency"]["p99_ms"] is not None
    assert phase["throughput_per_sec"] > 0


def test_tcp_run_with_warmup_and_report_json(tmp_path):
    scenario = Scenario(
        name="tcp-warmup",
        protocol="ezbft",
        replica_regions=("local",) * 4,
        latency="local",
        workload=WorkloadSpec(mode="closed", clients_per_region=1,
                              requests_per_client=5,
                              warmup_requests=2),
        seed=8,
        backends=("tcp",),
    )
    report = ScenarioRunner(backend="tcp").run(scenario)
    assert report.warmup_discarded == 2
    assert report.latency.count == 3
    out = tmp_path / "report.json"
    report.save(str(out))
    assert out.read_text().startswith("{")


def test_tcp_crash_and_recover_fault_schedule():
    # Crash a non-target replica mid-run: the fast path needs all
    # 3f+1 replicas, so post-crash commits fall to the slow path while
    # requests keep completing.
    scenario = Scenario(
        name="tcp-crash",
        protocol="ezbft",
        replica_regions=("local",) * 4,
        latency="local",
        # Think time paces the closed loop (~60ms/request) so the run
        # is guaranteed to span the crash window on real sockets.
        workload=WorkloadSpec(mode="closed", clients_per_region=1,
                              requests_per_client=8,
                              think_time_ms=60.0),
        faults=(CrashReplica(at_ms=100.0, replica="r3"),
                RecoverReplica(at_ms=700.0, replica="r3")),
        seed=9,
        slow_path_timeout=150.0,
        retry_timeout=5_000.0,
        suspicion_timeout=3_000.0,
        backends=("tcp",),
    )
    report = ScenarioRunner(backend="tcp", tcp_timeout_s=30.0) \
        .run(scenario)
    assert report.delivered == 8
    assert report.fast_path_ratio < 1.0
    assert [e["event"] for e in report.fault_log] == \
        ["CrashReplica", "RecoverReplica"]


def test_unsupported_fault_event_rejected_on_tcp():
    scenario = Scenario(
        name="tcp-bad",
        protocol="ezbft",
        replica_regions=("local",) * 4,
        latency="local",
        workload=WorkloadSpec(mode="open", rate_per_client=10.0),
        duration_ms=200.0,
        faults=(LatencyShift(at_ms=10.0, factor=2.0),),
    )
    with pytest.raises(ConfigurationError, match="not.*supported"):
        ScenarioRunner(backend="tcp").run(scenario)


@pytest.mark.parametrize("protocol", ["pbft", "zyzzyva", "fab"])
def test_baseline_protocols_run_scenarios_over_tcp(protocol):
    report = ScenarioRunner(backend="tcp").run(
        preset(f"smoke-{protocol}"))
    assert report.protocol == protocol
    assert report.delivered == 12
