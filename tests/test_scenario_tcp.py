"""Scenario execution on the asyncio TCP backend (real localhost
sockets, OS-assigned ports)."""

import asyncio

import pytest

from repro.errors import ConfigurationError, ScenarioTimeoutError
from repro.scenario import (
    CrashReplica,
    LatencyShift,
    RecoverReplica,
    Scenario,
    ScenarioRunner,
    WorkloadSpec,
    preset,
)


def test_smoke_scenario_runs_over_tcp():
    scenario = preset("smoke")
    assert "tcp" in scenario.backends
    report = ScenarioRunner(backend="tcp").run(scenario)
    assert report.backend == "tcp"
    # 1 distinct region x 2 clients x 6 requests, all delivered.
    assert report.delivered == 12
    assert report.fast_path_ratio == 1.0
    assert report.network["frames_received"] > 0
    data = report.to_dict()
    phase = data["phases"][0]
    assert phase["latency"]["p99_ms"] is not None
    assert phase["throughput_per_sec"] > 0


def test_tcp_run_with_warmup_and_report_json(tmp_path):
    scenario = Scenario(
        name="tcp-warmup",
        protocol="ezbft",
        replica_regions=("local",) * 4,
        latency="local",
        workload=WorkloadSpec(mode="closed", clients_per_region=1,
                              requests_per_client=5,
                              warmup_requests=2),
        seed=8,
        backends=("tcp",),
    )
    report = ScenarioRunner(backend="tcp").run(scenario)
    assert report.warmup_discarded == 2
    assert report.latency.count == 3
    out = tmp_path / "report.json"
    report.save(str(out))
    assert out.read_text().startswith("{")


def test_tcp_crash_and_recover_fault_schedule():
    # Crash a non-target replica mid-run: the fast path needs all
    # 3f+1 replicas, so post-crash commits fall to the slow path while
    # requests keep completing.
    scenario = Scenario(
        name="tcp-crash",
        protocol="ezbft",
        replica_regions=("local",) * 4,
        latency="local",
        # Think time paces the closed loop (~60ms/request) so the run
        # is guaranteed to span the crash window on real sockets.
        workload=WorkloadSpec(mode="closed", clients_per_region=1,
                              requests_per_client=8,
                              think_time_ms=60.0),
        faults=(CrashReplica(at_ms=100.0, replica="r3"),
                RecoverReplica(at_ms=700.0, replica="r3")),
        seed=9,
        slow_path_timeout=150.0,
        retry_timeout=5_000.0,
        suspicion_timeout=3_000.0,
        backends=("tcp",),
    )
    report = ScenarioRunner(backend="tcp", tcp_timeout_s=30.0) \
        .run(scenario)
    assert report.delivered == 8
    assert report.fast_path_ratio < 1.0
    assert [e["event"] for e in report.fault_log] == \
        ["CrashReplica", "RecoverReplica"]


def test_unsupported_fault_event_rejected_on_tcp():
    # Every *built-in* fault type is TCP-supported since the netem
    # seam; an unregistered custom event class still fails fast.
    from dataclasses import dataclass

    from repro.scenario import FaultEvent
    from repro.scenario.faults import TcpFaultInjector

    @dataclass(frozen=True)
    class MeteorStrike(FaultEvent):
        pass

    with pytest.raises(ConfigurationError, match="not.*supported"):
        TcpFaultInjector.check_supported((MeteorStrike(at_ms=1.0),))


def test_remote_hosted_replica_fault_rejected_on_tcp():
    # Replica-targeted faults cannot reach a replica the host map
    # places in another process; the error names the replica.
    from repro.scenario import CrashReplica
    from repro.scenario.faults import TcpFaultInjector

    with pytest.raises(ConfigurationError, match="r3"):
        TcpFaultInjector.check_supported(
            (CrashReplica(at_ms=1.0, replica="r3"),),
            remote_replicas=("r3",))


@pytest.mark.parametrize("protocol", ["pbft", "zyzzyva", "fab"])
def test_baseline_protocols_run_scenarios_over_tcp(protocol):
    report = ScenarioRunner(backend="tcp").run(
        preset(f"smoke-{protocol}"))
    assert report.protocol == protocol
    assert report.delivered == 12


def test_tcp_latency_shift_and_churn_no_longer_raise():
    """Fault-schedule parity (ROADMAP): LatencyShift retargets the live
    netem profile and ClientChurn spawns/stops drivers mid-run on TCP,
    and the run tears down without leaking loop tasks."""
    from repro.netem import LinkModel, NetemProfile
    from repro.scenario import ClientChurn

    scenario = Scenario(
        name="tcp-shift-churn",
        protocol="ezbft",
        replica_regions=("local",) * 4,
        latency="local",
        netem=NetemProfile(default=LinkModel(delay_ms=5.0)),
        workload=WorkloadSpec(mode="closed", clients_per_region=1,
                              requests_per_client=4,
                              think_time_ms=40.0),
        faults=(LatencyShift(at_ms=100.0, factor=2.0),
                ClientChurn(at_ms=150.0, add=2),
                ClientChurn(at_ms=400.0, stop=2)),
        seed=10,
        backends=("tcp",),
    )

    async def scenario_run():
        runner = ScenarioRunner(backend="tcp", tcp_timeout_s=30.0)
        report = await runner._run_tcp(scenario)
        await asyncio.sleep(0.2)
        leftovers = [t for t in asyncio.all_tasks()
                     if t is not asyncio.current_task()
                     and not t.done()]
        assert leftovers == []
        return report

    report = asyncio.run(scenario_run())
    assert [e["event"] for e in report.fault_log] == \
        ["LatencyShift", "ClientChurn", "ClientChurn"]
    # 4 initial requests + whatever the churned clients got through
    # before being stopped.
    assert report.delivered >= 4
    assert report.network["netem_frames_shaped"] > 0


def test_tcp_netem_chaos_faults_apply():
    """The four netem chaos events execute on TCP without raising and
    retarget the cluster's live shaper."""
    from repro.scenario import (
        BandwidthCap,
        Jitter,
        PacketLoss,
        Reorder,
    )

    scenario = Scenario(
        name="tcp-chaos",
        protocol="ezbft",
        replica_regions=("local",) * 4,
        latency="local",
        workload=WorkloadSpec(mode="closed", clients_per_region=1,
                              requests_per_client=4,
                              think_time_ms=30.0),
        faults=(PacketLoss(at_ms=10.0, probability=0.05),
                Jitter(at_ms=20.0, jitter_ms=2.0),
                BandwidthCap(at_ms=30.0, rate_kbps=10_000.0),
                Reorder(at_ms=40.0, probability=0.1, extra_ms=1.0)),
        seed=11,
        retry_timeout=800.0,
        backends=("tcp",),
    )
    report = ScenarioRunner(backend="tcp", tcp_timeout_s=30.0) \
        .run(scenario)
    assert report.delivered == 4
    assert [e["event"] for e in report.fault_log] == \
        ["PacketLoss", "Jitter", "BandwidthCap", "Reorder"]
    assert report.network["netem_frames_shaped"] > 0


def test_lossy_wan_preset_runs_on_tcp():
    """Acceptance: the lossy-WAN preset (loss + jitter + mid-run
    LatencyShift) executes on the TCP backend."""
    report = ScenarioRunner(backend="tcp", tcp_timeout_s=45.0) \
        .run(preset("lossy-wan"))
    assert report.delivered == 12
    assert [e["event"] for e in report.fault_log] == ["LatencyShift"]
    assert report.network["netem_frames_shaped"] > 0


def _wedged_scenario() -> Scenario:
    """A closed-loop run that cannot finish: 3 of 4 replicas crash at
    t=0, so no quorum ever forms.  Recovery timers are pushed far out
    so the wedge is quiet (no retry/suspicion churn) while the runner
    waits."""
    return Scenario(
        name="tcp-wedged",
        protocol="ezbft",
        replica_regions=("local",) * 4,
        latency="local",
        workload=WorkloadSpec(mode="closed", clients_per_region=1,
                              requests_per_client=2),
        faults=(CrashReplica(at_ms=0.0, replica="r1"),
                CrashReplica(at_ms=0.0, replica="r2"),
                CrashReplica(at_ms=0.0, replica="r3")),
        slow_path_timeout=400.0,
        retry_timeout=60_000.0,
        suspicion_timeout=60_000.0,
        view_change_timeout=60_000.0,
        backends=("tcp",),
    )


def test_tcp_timeout_raises_scenario_timeout_error():
    with pytest.raises(ScenarioTimeoutError, match="did not finish"):
        ScenarioRunner(backend="tcp",
                       tcp_timeout_s=1.0).run(_wedged_scenario())


def test_tcp_partial_startup_failure_stops_started_nodes():
    """A bind failure partway through cluster startup must still stop
    the nodes that did come up (teardown runs on *any* failure, not
    just timeouts)."""
    from repro.transport import asyncio_tcp

    started = []
    original_start = asyncio_tcp.AsyncioNode.start

    async def failing_start(self):
        if len(started) == 2:
            raise OSError("synthetic bind failure")
        await original_start(self)
        started.append(self)

    asyncio_tcp.AsyncioNode.start = failing_start
    try:
        async def scenario_run():
            runner = ScenarioRunner(backend="tcp")
            with pytest.raises(OSError, match="synthetic"):
                await runner._run_tcp(preset("smoke"))
            assert len(started) == 2
            assert all(node._closed for node in started)

        asyncio.run(scenario_run())
    finally:
        asyncio_tcp.AsyncioNode.start = original_start


def test_tcp_timeout_tears_down_cluster_and_leaves_no_tasks():
    """A timed-out run must not strand the deployment: every node is
    stopped (sockets closed, send tasks cancelled) and no loop task
    survives the failure."""
    from repro.transport.asyncio_tcp import AsyncioCluster

    stopped = []
    original_stop = AsyncioCluster.stop

    async def spying_stop(self):
        stopped.append(self)
        await original_stop(self)

    AsyncioCluster.stop = spying_stop
    try:
        async def scenario_run():
            runner = ScenarioRunner(backend="tcp", tcp_timeout_s=1.0)
            with pytest.raises(ScenarioTimeoutError):
                await runner._run_tcp(_wedged_scenario())
            # cleanup ran inside the failing coroutine itself
            assert len(stopped) == 1
            cluster = stopped[0]
            assert all(node._closed
                       for node in cluster.nodes.values())
            # let cancelled send tasks and EOF'd connection readers
            # unwind, then require a quiet loop
            await asyncio.sleep(0.2)
            leftovers = [t for t in asyncio.all_tasks()
                         if t is not asyncio.current_task()
                         and not t.done()]
            assert leftovers == []

        asyncio.run(scenario_run())
    finally:
        AsyncioCluster.stop = original_stop
