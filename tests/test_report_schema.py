"""Report-schema regression: golden-file pin of the JSON key sets and
CSV column sets the exporters emit.

Benchmarks, the CLI, and downstream CSV consumers key into these
structures by name; an exporter that silently drops (or renames) a
field would only fail far away.  The golden file
``tests/data/report_schema.json`` is the contract: any schema change
must update it *deliberately* (and the entries are sorted, so the diff
shows exactly what changed).

Regenerate after an intentional change with::

    python tests/test_report_schema.py --regen
"""

import json
import os

from repro.scenario import ScenarioRunner, preset
from repro.scenario.report import REPORT_CSV_COLUMNS
from repro.sweep import SERIES_CSV_COLUMNS, SweepRunner, SweepSpec

GOLDEN_PATH = os.path.join(os.path.dirname(__file__), "data",
                           "report_schema.json")


def _experiment_report():
    return ScenarioRunner().run(preset("smoke"))


def _sweep_report():
    return SweepRunner().run(
        SweepSpec(base="smoke", grid={"clients": (1,), "seed": (1,)}))


def current_schema():
    report = _experiment_report()
    data = report.to_dict()
    sweep_report = _sweep_report()
    sweep_data = sweep_report.to_dict()
    return {
        "experiment_report_keys": sorted(data),
        "experiment_totals_keys": sorted(data["totals"]),
        "experiment_latency_keys": sorted(data["totals"]["latency"]),
        "experiment_phase_keys": sorted(data["phases"][0]),
        "experiment_protocol_health_keys":
            sorted(data["protocol_health"]),
        "experiment_csv_columns": list(REPORT_CSV_COLUMNS),
        "experiment_row_keys": sorted(report.to_rows()[0]),
        "sweep_report_keys": sorted(sweep_data),
        "sweep_cell_keys": sorted(sweep_data["cells"][0]),
        "sweep_csv_columns_clients_seed":
            sweep_report.csv_columns(),
        "sweep_series_csv_columns": list(SERIES_CSV_COLUMNS),
        "sweep_series_row_keys":
            sorted(sweep_report.series_to_rows("clients")[0]),
    }


def golden_schema():
    with open(GOLDEN_PATH, "r", encoding="utf-8") as fh:
        return json.load(fh)


def test_report_schema_matches_golden_file():
    current = current_schema()
    golden = golden_schema()
    assert set(current) == set(golden), \
        "schema sections changed; regenerate the golden file " \
        "deliberately (see module docstring)"
    for section in golden:
        assert current[section] == golden[section], (
            f"report schema drifted in {section!r}: exporters must "
            f"not silently drop or rename fields consumed by "
            f"benchmarks.  If this change is intentional, regenerate "
            f"tests/data/report_schema.json (module docstring).")


def test_csv_header_line_matches_columns(tmp_path):
    # The written artifact itself (not just the constant) carries the
    # pinned columns.
    report = _experiment_report()
    path = tmp_path / "report.csv"
    report.to_csv(str(path))
    header = path.read_text().splitlines()[0]
    assert header == ",".join(REPORT_CSV_COLUMNS)


if __name__ == "__main__":
    import sys
    if "--regen" in sys.argv:
        os.makedirs(os.path.dirname(GOLDEN_PATH), exist_ok=True)
        with open(GOLDEN_PATH, "w", encoding="utf-8") as fh:
            json.dump(current_schema(), fh, indent=2)
            fh.write("\n")
        print(f"wrote {GOLDEN_PATH}")
    else:
        print("pass --regen to rewrite the golden schema file")
