"""Unit tests for Tarjan SCC and the execution-order linearization."""

import networkx as nx
import pytest

from repro.graph import execution_batches, linearize, tarjan_scc


def as_sets(components):
    return [frozenset(c) for c in components]


def test_empty_graph():
    assert tarjan_scc({}) == []


def test_single_node_no_edges():
    assert as_sets(tarjan_scc({"a": []})) == [frozenset({"a"})]


def test_chain_reverse_topological():
    # a -> b -> c (a depends on b depends on c): c must come first.
    graph = {"a": ["b"], "b": ["c"], "c": []}
    components = tarjan_scc(graph)
    order = [next(iter(c)) for c in components]
    assert order == ["c", "b", "a"]


def test_simple_cycle_is_one_component():
    graph = {"a": ["b"], "b": ["a"]}
    assert as_sets(tarjan_scc(graph)) == [frozenset({"a", "b"})]


def test_self_loop():
    assert as_sets(tarjan_scc({"a": ["a"]})) == [frozenset({"a"})]


def test_two_cycles_bridged():
    # Cycle {a,b} depends on cycle {c,d}.
    graph = {"a": ["b"], "b": ["a", "c"], "c": ["d"], "d": ["c"]}
    components = as_sets(tarjan_scc(graph))
    assert frozenset({"c", "d"}) in components
    assert frozenset({"a", "b"}) in components
    assert components.index(frozenset({"c", "d"})) < \
        components.index(frozenset({"a", "b"}))


def test_successor_not_in_keys_is_implicit_node():
    graph = {"a": ["ghost"]}
    components = as_sets(tarjan_scc(graph))
    assert frozenset({"ghost"}) in components


def test_matches_networkx_on_random_graphs():
    rng_graph = nx.gnp_random_graph(40, 0.08, seed=11, directed=True)
    adjacency = {n: list(rng_graph.successors(n))
                 for n in rng_graph.nodes}
    ours = set(as_sets(tarjan_scc(adjacency)))
    theirs = {frozenset(c)
              for c in nx.strongly_connected_components(rng_graph)}
    assert ours == theirs


def test_reverse_topological_property_against_networkx():
    rng_graph = nx.gnp_random_graph(30, 0.1, seed=3, directed=True)
    adjacency = {n: list(rng_graph.successors(n))
                 for n in rng_graph.nodes}
    components = tarjan_scc(adjacency)
    position = {}
    for idx, component in enumerate(components):
        for node in component:
            position[node] = idx
    # Every edge u -> v must have v's component at the same or an earlier
    # position (dependencies first).
    for u, v in rng_graph.edges:
        assert position[v] <= position[u]


def test_deep_graph_no_recursion_limit():
    n = 50_000
    graph = {i: [i + 1] for i in range(n)}
    graph[n] = []
    components = tarjan_scc(graph)
    assert len(components) == n + 1


def test_execution_batches_sorts_within_component():
    graph = {("r1", 0): [("r0", 0)], ("r0", 0): [("r1", 0)]}
    seqs = {("r1", 0): (2, "r1", 0), ("r0", 0): (2, "r0", 0)}
    batches = execution_batches(graph, sort_key=lambda n: seqs[n])
    assert batches == [[("r0", 0), ("r1", 0)]]  # replica-id tie-break


def test_execution_batches_sequence_number_order():
    graph = {"x": ["y"], "y": ["x"]}
    seqs = {"x": (1, "r9", 0), "y": (2, "r0", 0)}
    batches = execution_batches(graph, sort_key=lambda n: seqs[n])
    assert batches == [["x", "y"]]  # lower seq first despite replica id


def test_linearize_flattens_in_order():
    graph = {"a": ["b"], "b": [], "c": ["a"]}
    order = linearize(graph, sort_key=lambda n: (0, n, 0))
    assert order.index("b") < order.index("a") < order.index("c")


def test_linearize_deterministic_across_calls():
    graph = {"a": ["b", "c"], "b": ["c"], "c": ["a"], "d": []}
    key = lambda n: (0, n, 0)  # noqa: E731
    assert linearize(graph, key) == linearize(graph, key)
