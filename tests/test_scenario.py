"""Scenario API: spec validation, fault-schedule execution, phase
reporting, warmup exclusion, and end-to-end determinism."""

import math

import pytest

from repro.errors import ConfigurationError
from repro.scenario import (
    ClientChurn,
    CrashReplica,
    Heal,
    LatencyShift,
    Partition,
    Phase,
    RecoverReplica,
    Scenario,
    ScenarioRunner,
    SwapByzantine,
    WorkloadSpec,
    preset,
    run_scenario,
)


def lan_scenario(**overrides) -> Scenario:
    """A fast 4-replica LAN scenario for unit-level runs."""
    defaults = dict(
        name="t",
        protocol="ezbft",
        replica_regions=("local",) * 4,
        latency="local",
        workload=WorkloadSpec(mode="closed", clients_per_region=1,
                              requests_per_client=4),
        slow_path_timeout=50.0,
        retry_timeout=400.0,
        suspicion_timeout=200.0,
        view_change_timeout=400.0,
        seed=3,
    )
    defaults.update(overrides)
    return Scenario(**defaults)


# ----------------------------------------------------------------------
# Spec validation
# ----------------------------------------------------------------------
class TestValidation:
    def test_unknown_latency_name_rejected(self):
        with pytest.raises(ConfigurationError, match="latency matrix"):
            lan_scenario(latency="nope").validate()

    def test_region_not_in_matrix_rejected(self):
        with pytest.raises(ConfigurationError, match="not in latency"):
            lan_scenario(replica_regions=("mars",) * 4).validate()

    def test_bad_workload_mode_rejected(self):
        with pytest.raises(ConfigurationError, match="closed"):
            lan_scenario(workload=WorkloadSpec(mode="best-effort")) \
                .validate()

    def test_fault_event_unknown_replica_rejected(self):
        with pytest.raises(ConfigurationError, match="unknown replica"):
            lan_scenario(
                faults=(CrashReplica(at_ms=1.0, replica="r9"),)) \
                .validate()

    def test_fault_event_past_horizon_rejected(self):
        with pytest.raises(ConfigurationError, match="horizon"):
            lan_scenario(
                workload=WorkloadSpec(mode="open", rate_per_client=10),
                duration_ms=100.0,
                faults=(CrashReplica(at_ms=500.0, replica="r0"),)) \
                .validate()

    def test_open_loop_needs_horizon(self):
        with pytest.raises(ConfigurationError, match="horizon"):
            lan_scenario(workload=WorkloadSpec(mode="open")).validate()

    def test_duplicate_phase_names_rejected(self):
        with pytest.raises(ConfigurationError, match="duplicate phase"):
            lan_scenario(phases=(Phase("a", 10.0), Phase("a", 10.0))) \
                .validate()

    def test_unknown_byzantine_behavior_rejected(self):
        with pytest.raises(ConfigurationError, match="behavior"):
            lan_scenario(
                faults=(SwapByzantine(at_ms=0.0, replica="r0",
                                      behavior="lazy"),)).validate()

    def test_partition_sides_must_not_overlap(self):
        with pytest.raises(ConfigurationError, match="overlap"):
            lan_scenario(
                faults=(Partition(at_ms=0.0,
                                  sides=(("r0",), ("r0", "r1"))),)) \
                .validate()

    def test_churn_must_do_something(self):
        with pytest.raises(ConfigurationError, match="at least one"):
            lan_scenario(faults=(ClientChurn(at_ms=1.0),)).validate()


# ----------------------------------------------------------------------
# Execution: the basics
# ----------------------------------------------------------------------
class TestSimExecution:
    def test_closed_loop_delivers_every_request(self):
        # Client placement defaults to one group per *distinct* replica
        # region: the LAN deployment has one ("local"), so one client
        # issues requests_per_client requests.
        report = run_scenario(lan_scenario())
        assert report.delivered == 4
        assert report.fast_path_ratio == 1.0

    def test_report_shape(self):
        report = run_scenario(lan_scenario())
        data = report.to_dict()
        assert data["protocol"] == "ezbft"
        assert data["backend"] == "sim"
        phase = data["phases"][0]
        assert {"throughput_per_sec", "latency",
                "fast_path_ratio"} <= set(phase)
        assert {"p50_ms", "p90_ms", "p99_ms"} <= set(phase["latency"])
        # Strict JSON (NaN mapped to null).
        report.to_json()

    def test_every_protocol_runs_under_a_scenario(self):
        for protocol in ("ezbft", "pbft", "zyzzyva", "fab"):
            report = run_scenario(
                lan_scenario(protocol=protocol,
                             name=f"t-{protocol}"))
            assert report.delivered == 4, protocol
            assert report.latency.count == 4

    def test_custom_statemachine_factory(self):
        from repro.statemachine.kvstore import KVStore

        class AuditedKV(KVStore):
            pass

        report, cluster = ScenarioRunner().run_with_cluster(
            lan_scenario(statemachine=AuditedKV))
        assert report.delivered == 4
        for machine in cluster.statemachines().values():
            assert isinstance(machine, AuditedKV)

    def test_warmup_requests_excluded_recorder_side(self):
        scenario = lan_scenario(
            workload=WorkloadSpec(mode="closed", clients_per_region=2,
                                  requests_per_client=5,
                                  warmup_requests=2))
        report = run_scenario(scenario)
        # 2 clients x 5 requests; each client's first 2 are warmup.
        assert report.warmup_discarded == 4
        assert report.latency.count == 6
        assert report.delivered == 6

    def test_open_loop_phases_reported_separately(self):
        scenario = lan_scenario(
            workload=WorkloadSpec(mode="open", clients_per_region=2,
                                  rate_per_client=100.0),
            phases=(Phase("ramp", 200.0), Phase("steady", 300.0)),
        )
        report = run_scenario(scenario)
        assert [p.name for p in report.phases] == ["ramp", "steady"]
        ramp, steady = report.phases
        assert ramp.start_ms == 0.0 and ramp.end_ms == 200.0
        assert steady.start_ms == 200.0 and steady.end_ms == 500.0
        assert ramp.delivered > 0 and steady.delivered > 0
        assert report.delivered >= ramp.delivered + steady.delivered


# ----------------------------------------------------------------------
# Fault schedule
# ----------------------------------------------------------------------
class TestFaultSchedule:
    def test_events_fire_at_their_scheduled_sim_times(self):
        scenario = lan_scenario(
            workload=WorkloadSpec(mode="open", clients_per_region=1,
                                  rate_per_client=50.0),
            duration_ms=500.0,
            retry_timeout=60_000.0,
            suspicion_timeout=60_000.0,
            faults=(LatencyShift(at_ms=120.0, factor=2.0),
                    Partition(at_ms=250.0,
                              sides=(("r3",), ("r0", "r1", "r2"))),
                    Heal(at_ms=400.0)),
        )
        report = run_scenario(scenario)
        assert [(e["event"], e["at_ms"], e["applied_ms"])
                for e in report.fault_log] == [
            ("LatencyShift", 120.0, 120.0),
            ("Partition", 250.0, 250.0),
            ("Heal", 400.0, 400.0),
        ]

    def test_crash_owner_change_recover_is_deterministic(self):
        scenario = preset("crash-recovery")
        first = ScenarioRunner().run(scenario)
        second = ScenarioRunner().run(scenario)
        assert first.delivered == 6
        assert first.owner_changes >= 1      # suspicion -> owner change
        assert first.client_stats["retries"] >= 1
        assert first.fast_path_ratio < 1.0   # fast quorum unreachable
        a, b = first.to_dict(), second.to_dict()
        a.pop("wall_seconds")
        b.pop("wall_seconds")
        assert a == b

    def test_same_seed_same_report_with_jitter_and_contention(self):
        from repro.sim.network import NetworkConditions

        def scenario():
            return lan_scenario(
                workload=WorkloadSpec(mode="closed",
                                      clients_per_region=3,
                                      requests_per_client=6,
                                      contention=0.5),
                conditions=NetworkConditions(jitter_fraction=0.1),
                seed=99)

        a = run_scenario(scenario()).to_dict()
        b = run_scenario(scenario()).to_dict()
        a.pop("wall_seconds")
        b.pop("wall_seconds")
        assert a == b

    def test_different_seed_different_jittered_latencies(self):
        from repro.sim.network import NetworkConditions

        def report(seed):
            return run_scenario(lan_scenario(
                conditions=NetworkConditions(jitter_fraction=0.2),
                seed=seed))

        assert report(1).latency.mean != report(2).latency.mean

    def test_crash_blocks_and_recover_restores(self):
        # Crash r0 mid-run under open load from its own clients: the
        # fast path needs all four replicas, so deliveries during the
        # crash window are slow-path only; recovery happens after.
        scenario = lan_scenario(
            workload=WorkloadSpec(mode="open", clients_per_region=1,
                                  rate_per_client=40.0),
            phases=(Phase("healthy", 300.0), Phase("crashed", 400.0)),
            retry_timeout=60_000.0,
            suspicion_timeout=60_000.0,
            faults=(CrashReplica(at_ms=300.0, replica="r3"),),
        )
        report = run_scenario(scenario)
        healthy, crashed = report.phases
        assert healthy.fast_path_ratio == 1.0
        assert crashed.fast_path_ratio < 0.5
        assert crashed.delivered > 0  # slow path keeps committing

    def test_swap_byzantine_equivocation_triggers_pom(self):
        report = run_scenario(preset("equivocation"))
        assert report.delivered == 4
        assert report.client_stats["poms_sent"] >= 1
        assert report.owner_changes >= 1

    def test_client_churn_adds_load_mid_run(self):
        base = lan_scenario(
            workload=WorkloadSpec(mode="open", clients_per_region=1,
                                  rate_per_client=50.0),
            duration_ms=600.0,
            retry_timeout=60_000.0,
            suspicion_timeout=60_000.0)
        churned = base.with_overrides(
            faults=(ClientChurn(at_ms=300.0, add=3, region="local"),))
        quiet = run_scenario(base)
        loud = run_scenario(churned)
        assert loud.delivered > quiet.delivered
        assert loud.fault_log[0]["event"] == "ClientChurn"

    def test_recover_does_not_heal_explicit_partitions(self):
        # A replica that crashes and recovers while a Partition event
        # is in force must come back into a *still-partitioned*
        # network: recovery undoes only the crash isolation.
        scenario = lan_scenario(
            workload=WorkloadSpec(mode="open", clients_per_region=1,
                                  rate_per_client=20.0),
            duration_ms=500.0,
            retry_timeout=60_000.0,
            suspicion_timeout=60_000.0,
            faults=(Partition(at_ms=50.0,
                              sides=(("r1",), ("r2", "r3"))),
                    CrashReplica(at_ms=100.0, replica="r1"),
                    RecoverReplica(at_ms=200.0, replica="r1")),
        )
        _, cluster = ScenarioRunner().run_with_cluster(scenario)
        partitions = cluster.network.conditions.partitions
        assert ("r1", "r2") in partitions and ("r3", "r1") in partitions
        # ...and nothing beyond the declared partition survives.
        assert partitions == {("r1", "r2"), ("r2", "r1"),
                              ("r1", "r3"), ("r3", "r1")}

    def test_repeated_churn_stop_winds_down_distinct_clients(self):
        # Two stop=1 events must stop two different clients, i.e.
        # strictly less load than a single stop=1.
        def run(faults):
            return run_scenario(lan_scenario(
                workload=WorkloadSpec(mode="open", clients_per_region=3,
                                      rate_per_client=40.0),
                duration_ms=800.0,
                retry_timeout=60_000.0,
                suspicion_timeout=60_000.0,
                faults=faults))

        one = run((ClientChurn(at_ms=200.0, stop=1),))
        two = run((ClientChurn(at_ms=200.0, stop=1),
                   ClientChurn(at_ms=210.0, stop=1)))
        assert two.delivered < one.delivered

    def test_churned_clients_respect_the_scenario_horizon(self):
        # Clients added mid-run only get the *remaining* horizon, so
        # the run does not trail deliveries past the declared phases.
        scenario = lan_scenario(
            workload=WorkloadSpec(mode="open", clients_per_region=1,
                                  rate_per_client=40.0),
            duration_ms=400.0,
            retry_timeout=60_000.0,
            suspicion_timeout=60_000.0,
            faults=(ClientChurn(at_ms=300.0, add=2, region="local"),))
        _, cluster = ScenarioRunner().run_with_cluster(scenario)
        # Generous slack for in-flight completions; without the horizon
        # clamp the churned drivers issue until ~700ms.
        assert cluster.recorder.last_delivery < 500.0

    def test_swap_byzantine_uses_scenario_statemachine_on_sim(self):
        from repro.statemachine.kvstore import KVStore

        class AuditedKV(KVStore):
            pass

        scenario = lan_scenario(
            statemachine=AuditedKV,
            faults=(SwapByzantine(at_ms=0.0, replica="r3",
                                  behavior="silent"),))
        _, cluster = ScenarioRunner().run_with_cluster(scenario)
        assert isinstance(cluster.replicas["r3"].statemachine,
                          AuditedKV)

    def test_latency_shift_scales_from_base_not_compounding(self):
        # Two successive 2.0 shifts must equal one (absolute factors).
        def with_shifts(faults):
            return run_scenario(lan_scenario(
                name="shift",
                workload=WorkloadSpec(mode="open",
                                      clients_per_region=1,
                                      rate_per_client=50.0),
                duration_ms=400.0,
                retry_timeout=60_000.0,
                suspicion_timeout=60_000.0,
                faults=faults))

        once = with_shifts((LatencyShift(at_ms=100.0, factor=2.0),))
        twice = with_shifts((LatencyShift(at_ms=50.0, factor=2.0),
                             LatencyShift(at_ms=100.0, factor=2.0)))
        # After t=100ms both runs have identical conditions.
        assert math.isclose(once.phases[0].latency.maximum,
                            twice.phases[0].latency.maximum)


# ----------------------------------------------------------------------
# Presets
# ----------------------------------------------------------------------
class TestPresets:
    def test_every_preset_validates(self):
        from repro.scenario import available_presets
        for name in available_presets():
            preset(name).validate()

    def test_unknown_preset_raises_with_choices(self):
        with pytest.raises(ConfigurationError, match="smoke"):
            preset("nope")

    @pytest.mark.parametrize("protocol",
                             ["ezbft", "pbft", "zyzzyva", "fab"])
    def test_smoke_preset_per_protocol(self, protocol):
        report = run_scenario(preset(f"smoke-{protocol}"))
        assert report.protocol == protocol
        assert report.delivered == 12
