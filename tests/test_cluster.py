"""Cluster builder and harness tests."""

import pytest

from repro.cluster.builder import build_cluster
from repro.errors import ConfigurationError
from repro.sim.latency import EXPERIMENT1, LOCAL

from helpers import DeliveryLog, geo_cluster, lan_cluster


def test_unknown_protocol_rejected():
    with pytest.raises(ConfigurationError):
        build_cluster("raft", ["local"] * 4, LOCAL)


def test_primary_region_must_have_replica():
    with pytest.raises(ConfigurationError):
        build_cluster("pbft", ["virginia"] * 4, EXPERIMENT1,
                      primary_region="tokyo")


def test_primary_region_resolves_to_index():
    cluster = build_cluster(
        "pbft", ["virginia", "tokyo", "mumbai", "sydney"], EXPERIMENT1,
        primary_region="mumbai")
    assert cluster.primary_id == "r2"
    assert cluster.replicas["r0"].primary == "r2"


def test_primary_index_out_of_range():
    with pytest.raises(ConfigurationError):
        build_cluster("pbft", ["local"] * 4, LOCAL, primary_index=9)


def test_duplicate_client_rejected():
    cluster = lan_cluster()
    cluster.add_client("c0", "local")
    with pytest.raises(ConfigurationError):
        cluster.add_client("c0", "local")


def test_nearest_replica_selection():
    cluster = geo_cluster()
    assert cluster.replica_regions[cluster.nearest_replica("tokyo")] == \
        "tokyo"
    assert cluster.replica_regions[cluster.nearest_replica("sydney")] == \
        "sydney"


def test_recorder_collects_by_region():
    cluster = lan_cluster()
    client = cluster.add_client("c0", "local")
    client.submit(client.next_command("put", "k", "v"))
    cluster.run_until_idle()
    assert cluster.recorder.groups() == ("local",)
    assert cluster.recorder.summary("local").count == 1


def test_recorder_custom_group():
    cluster = lan_cluster()
    client = cluster.add_client("c0", "local", record_group="mygroup")
    client.submit(client.next_command("put", "k", "v"))
    cluster.run_until_idle()
    assert "mygroup" in cluster.recorder.groups()


def test_recording_disabled():
    cluster = lan_cluster()
    client = cluster.add_client("c0", "local", record=False)
    client.submit(client.next_command("put", "k", "v"))
    cluster.run_until_idle()
    assert cluster.recorder.total_delivered == 0


def test_replica_stats_snapshot():
    cluster = lan_cluster()
    client = cluster.add_client("c0", "local")
    client.submit(client.next_command("put", "k", "v"))
    cluster.run_until_idle()
    stats = cluster.replica_stats()
    assert set(stats) == {"r0", "r1", "r2", "r3"}
    assert sum(s["led"] for s in stats.values()) == 1


def test_run_until_bounded_time():
    cluster = geo_cluster()
    client = cluster.add_client("c0", "tokyo")
    client.submit(client.next_command("put", "k", "v"))
    cluster.run(until=10.0)  # not enough time for a WAN round trip
    assert cluster.recorder.total_delivered == 0
    cluster.run_until_idle()
    assert cluster.recorder.total_delivered == 1


def test_seed_determinism():
    def run(seed):
        cluster = build_cluster(
            "ezbft", ["virginia", "tokyo", "mumbai", "sydney"],
            EXPERIMENT1, seed=seed)
        cluster.network.conditions.jitter_fraction = 0.1
        log = DeliveryLog()
        client = cluster.add_client("c0", "tokyo",
                                    on_delivery=log.hook("c0"))
        client.submit(client.next_command("put", "k", "v"))
        cluster.run_until_idle()
        return log.latencies()

    assert run(7) == run(7)
    assert run(7) != run(8)  # jitter actually depends on the seed
