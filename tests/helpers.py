"""Shared cluster builders and assertion helpers for the test suite."""

from __future__ import annotations

from typing import List, Tuple

from repro.cluster.builder import Cluster, build_cluster
from repro.sim.latency import EXPERIMENT1, LOCAL, uniform_matrix
from repro.sim.network import CpuModel

#: The paper's Experiment-1 deployment.
GEO_REGIONS = ["virginia", "tokyo", "mumbai", "sydney"]
#: A 4-replica single-region deployment for fast unit-ish tests.
LAN_REGIONS = ["local"] * 4


def lan_cluster(protocol: str = "ezbft", **kwargs) -> Cluster:
    """4 replicas in one region, zero CPU cost, tight timeouts."""
    kwargs.setdefault("cpu", CpuModel.free())
    kwargs.setdefault("slow_path_timeout", 50.0)
    kwargs.setdefault("retry_timeout", 200.0)
    kwargs.setdefault("suspicion_timeout", 100.0)
    kwargs.setdefault("view_change_timeout", 150.0)
    return build_cluster(protocol, LAN_REGIONS, LOCAL, **kwargs)


def geo_cluster(protocol: str = "ezbft", **kwargs) -> Cluster:
    """The Experiment-1 WAN deployment."""
    kwargs.setdefault("slow_path_timeout", 400.0)
    kwargs.setdefault("retry_timeout", 1500.0)
    return build_cluster(protocol, GEO_REGIONS, EXPERIMENT1, **kwargs)


class DeliveryLog:
    """Collects (client_id, result, latency, path) delivery records."""

    def __init__(self) -> None:
        self.records: List[Tuple[str, object, float, str]] = []

    def hook(self, client_id: str):
        def _on_delivery(command, result, latency, path):
            self.records.append((client_id, result, latency, path))
        return _on_delivery

    @property
    def paths(self) -> List[str]:
        return [r[3] for r in self.records]

    @property
    def results(self) -> List[object]:
        return [r[1] for r in self.records]

    def latencies(self) -> List[float]:
        return [r[2] for r in self.records]


def assert_replicas_consistent(cluster: Cluster,
                               exclude: Tuple[str, ...] = ()) -> dict:
    """All (non-excluded) replicas hold identical final KV state."""
    states = {rid: kv.final_items()
              for rid, kv in cluster.kvstores().items()
              if rid not in exclude}
    reference = next(iter(states.values()))
    for rid, state in states.items():
        assert state == reference, (
            f"replica {rid} diverged: {state} != {reference}")
    return reference


def assert_histories_consistent(cluster: Cluster,
                                exclude: Tuple[str, ...] = ()) -> None:
    """ezBFT's consistency property: every pair of *interfering*
    commands executes in the same relative order at every correct
    replica.  Non-interfering commands are explicitly allowed to execute
    "in parallel, in any order" (paper Section III), so their relative
    order is not compared."""
    replicas = {
        rid: replica for rid, replica in cluster.replicas.items()
        if rid not in exclude and hasattr(replica, "executor")
    }
    histories = {rid: replica.executor.history
                 for rid, replica in replicas.items()}
    common = None
    for history in histories.values():
        idents = {ident for _, ident in history}
        common = idents if common is None else (common & idents)
    if not common:
        return
    # Gather command objects (any replica's log serves).
    reference_rid = next(iter(replicas))
    reference_replica = replicas[reference_rid]
    commands = {}
    for entry in reference_replica._log_index.values():
        commands[entry.command.ident] = entry.command
    relation = reference_replica.interference
    positions = {
        rid: {ident: pos for pos, (_, ident) in enumerate(history)
              if ident in common}
        for rid, history in histories.items()
    }
    idents = sorted(common)
    for i, a in enumerate(idents):
        for b in idents[i + 1:]:
            cmd_a, cmd_b = commands.get(a), commands.get(b)
            if cmd_a is None or cmd_b is None:
                continue
            if not relation.interferes(cmd_a, cmd_b):
                continue
            orders = {rid: positions[rid][a] < positions[rid][b]
                      for rid in positions}
            assert len(set(orders.values())) == 1, (
                f"interfering commands {a} and {b} executed in "
                f"different orders: {orders}")
