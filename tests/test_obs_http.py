"""Schema pin for the obs endpoints: golden /metrics exposition and
/healthz body.

Dashboards, the CI obs-smoke job, and sweep scraping key into these
surfaces by metric name, label set, bucket boundary, and health field;
a rename or a bucket drift must show up as a deliberate golden diff,
not a silently broken dashboard.  Everything is rendered from a fake
clock and a fixed event sequence, so both bodies are byte-stable.

Regenerate after an intentional change with::

    python tests/test_obs_http.py --regen
"""

import asyncio
import json
import os

from repro.obs import (
    HealthMonitor,
    LiveInstruments,
    MetricsRegistry,
    ObsServer,
    fetch_json,
    http_request,
)

GOLDEN_PATH = os.path.join(os.path.dirname(__file__), "data",
                           "obs_endpoints.json")


class _FakeClock:
    def __init__(self) -> None:
        self.now = 1000.0

    def __call__(self) -> float:
        return self.now


class _StubReplica:
    def __init__(self) -> None:
        self.stats = {"executed": 7, "committed_fast": 5}
        self.checkpoint_log = [(4, "digest")]


class _StubNode:
    def __init__(self, now: float) -> None:
        self.frames_received = 42
        self.last_rx_ms = {"r1": now - 100.0, "r2": now - 250.0}


class _StubConfig:
    replica_ids = ("r0", "r1", "r2", "r3")
    slow_quorum_size = 3


def _build_registry(clock: _FakeClock) -> MetricsRegistry:
    registry = MetricsRegistry()
    live = LiveInstruments(registry, replica="r0", protocol="ezbft",
                           now_ms=clock)
    live.commit("fast")
    live.commit("fast")
    live.commit("slow")
    live.execute()
    clock.now += 12.0
    live.execute()
    live.request_latency(3.0)
    live.request_latency(80.0)
    live.request_latency(7000.0)
    live.owner_change()
    live.view_change()
    live.checkpoint_stable(4)
    live.frame_received()
    live.frame_sent()
    live.frame_dropped()
    live.netem_dropped("r0", "r1")
    live.netem_delayed("r0", "r1", 40.0)
    live.control_event("CrashReplica")
    return registry


def _build_monitor(clock: _FakeClock) -> HealthMonitor:
    monitor = HealthMonitor("r0", "ezbft", _StubReplica(),
                            _StubNode(clock.now), _StubConfig(),
                            clock)
    clock.now += 500.0
    return monitor


def current_bodies():
    clock = _FakeClock()
    registry = _build_registry(clock)
    monitor = _build_monitor(clock)

    async def scrape():
        server = ObsServer(registry, healthz=monitor.healthz)
        await server.start()
        try:
            host, port = server.address
            status, metrics = await http_request(host, port, "/metrics")
            assert status == 200
            healthz = await fetch_json(host, port, "/healthz")
            snapshot = await fetch_json(host, port, "/metrics.json")
        finally:
            await server.stop()
        return metrics.decode("utf-8"), healthz, snapshot

    metrics_text, healthz, snapshot = asyncio.run(scrape())
    return {
        "metrics_text": metrics_text.splitlines(),
        "healthz": healthz,
        "snapshot_schema_version": snapshot["schema_version"],
        "snapshot_metric_names": [f["name"]
                                  for f in snapshot["metrics"]],
    }


def golden_bodies():
    with open(GOLDEN_PATH, "r", encoding="utf-8") as fh:
        return json.load(fh)


def test_obs_endpoints_match_golden_file():
    current = current_bodies()
    golden = golden_bodies()
    assert set(current) == set(golden), \
        "obs golden sections changed; regenerate deliberately " \
        "(see module docstring)"
    for section in golden:
        assert current[section] == golden[section], (
            f"obs endpoint schema drifted in {section!r}: metric "
            f"names, labels, bucket bounds and health fields are a "
            f"contract with dashboards and the CI smoke job.  If "
            f"intentional, regenerate tests/data/obs_endpoints.json "
            f"(module docstring).")


def test_healthz_always_200_even_when_degraded():
    clock = _FakeClock()
    registry = MetricsRegistry()
    monitor = HealthMonitor("r0", "ezbft", _StubReplica(),
                            _StubNode(clock.now), _StubConfig(),
                            clock, is_crashed=lambda: True)

    async def probe():
        server = ObsServer(registry, healthz=monitor.healthz)
        await server.start()
        try:
            host, port = server.address
            return await http_request(host, port, "/healthz")
        finally:
            await server.stop()

    status, body = asyncio.run(probe())
    payload = json.loads(body)
    assert status == 200
    assert payload["status"] == "degraded"
    assert payload["crashed"] is True
    assert payload["reasons"]


def test_unknown_path_and_wrong_method():
    registry = MetricsRegistry()

    async def probe():
        server = ObsServer(registry)
        await server.start()
        try:
            host, port = server.address
            missing = await http_request(host, port, "/nope")
            wrong = await http_request(host, port, "/metrics",
                                       method="POST")
            no_monitor = await http_request(host, port, "/healthz")
        finally:
            await server.stop()
        return missing, wrong, no_monitor

    missing, wrong, no_monitor = asyncio.run(probe())
    assert missing[0] == 404
    assert wrong[0] == 405
    assert no_monitor[0] == 404


if __name__ == "__main__":
    import sys
    if "--regen" in sys.argv:
        os.makedirs(os.path.dirname(GOLDEN_PATH), exist_ok=True)
        with open(GOLDEN_PATH, "w", encoding="utf-8") as fh:
            json.dump(current_bodies(), fh, indent=2)
            fh.write("\n")
        print(f"wrote {GOLDEN_PATH}")
    else:
        print("pass --regen to rewrite the golden endpoints file")
