"""The hot-path caches: digest memoization, envelope verification
memo, pairwise session-key cache, and their safety properties.

The central property under test: caching must be *behaviorally
invisible*.  Cached and uncached paths must agree on every value, and
a byzantine node that mutates a frozen message after signing it
(``object.__setattr__``) must still fail verification -- the caches
key on content, never on object identity.
"""

import pytest

from repro.crypto.authenticator import (
    make_authenticator,
    verify_authenticator,
    verify_authenticator_batch,
)
from repro.crypto.digest import (
    _encode,
    canonical_bytes,
    clear_caches,
    digest,
)
from repro.crypto.keys import KeyPair, KeyRegistry
from repro.errors import InvalidSignatureError, UnknownSignerError
from repro.messages.base import SignedPayload
from repro.messages.ezbft import Request
from repro.statemachine.base import Command


def _request(value: str = "v") -> Request:
    return Request(command=Command(client_id="c0", timestamp=1,
                                   op="put", key="k", value=value))


def _registry(*node_ids: str):
    registry = KeyRegistry()
    pairs = {}
    for node_id in node_ids:
        pair = KeyPair.generate(node_id)
        registry.register(pair)
        pairs[node_id] = pair
    return registry, pairs


# ----------------------------------------------------------------------
# canonical_bytes / digest memoization: cached == uncached
# ----------------------------------------------------------------------
#: Nested values covering every canonicalized shape: dicts, sets,
#: tuples, bytes, None, bools, floats.
_NESTED_VALUES = [
    {"a": 1, "b": [2, 3]},
    {"s": {3, 1, 2}, "t": (1, (2, 3))},
    {"blob": b"\x00\xff", "nested": {"k": [b"x", b"y"]}},
    {"mixed": [None, True, 1.5, "s", {"deep": {9, 7}}]},
    {"empty": {}, "list": [], "set": set(), "bytes": b""},
]


@pytest.mark.parametrize("value", _NESTED_VALUES)
def test_plain_values_match_direct_encoding(value):
    # Plain containers never hit the cache; still must equal _encode.
    assert canonical_bytes(value) == _encode(value)


@pytest.mark.parametrize("value", _NESTED_VALUES)
def test_wired_objects_cached_encoding_matches_uncached(value):
    class Wired:
        def __init__(self, inner):
            self.inner = inner

        def __hash__(self):
            return hash(_encode(self.inner))

        def __eq__(self, other):
            return isinstance(other, Wired) and \
                other.inner == self.inner

        def to_wire(self):
            return {"inner": self.inner}

    obj = Wired(value)
    clear_caches()
    first = canonical_bytes(obj)       # cache miss: full encode
    second = canonical_bytes(obj)      # cache hit
    clear_caches()
    uncached = canonical_bytes(obj)    # fresh encode again
    assert first == second == uncached == _encode(obj)
    assert digest(obj) == digest(obj.to_wire())


def test_message_object_digest_equals_wire_digest():
    req = _request()
    clear_caches()
    assert digest(req) == digest(req.to_wire())
    assert canonical_bytes(req) == canonical_bytes(req.to_wire())


def test_unhashable_wired_object_falls_back_uncached():
    class Unhashable:
        __hash__ = None

        def to_wire(self):
            return {"v": 1}

    assert canonical_bytes(Unhashable()) == _encode({"v": 1})


# ----------------------------------------------------------------------
# Byzantine mutate-after-sign: content keying defeats stale cache hits
# ----------------------------------------------------------------------
def test_mutated_request_digest_changes_despite_cache():
    req = _request("original")
    clear_caches()
    before = digest(req)
    object.__setattr__(req, "command",
                       Command(client_id="c0", timestamp=1,
                               op="put", key="k", value="tampered"))
    assert digest(req) != before
    assert digest(req) == digest(req.to_wire())


def test_mutate_after_sign_fails_envelope_verification():
    registry, pairs = _registry("n0")
    req = _request("honest")
    envelope = SignedPayload.create(req, pairs["n0"])
    assert envelope.verify(registry)
    # The byzantine move: flip the payload under the signature after
    # the verdict was cached.
    object.__setattr__(
        envelope.payload, "command",
        Command(client_id="c0", timestamp=1,
                op="put", key="k", value="evil"))
    assert not envelope.verify(registry)


def test_envelope_cache_cleared_on_key_rotation():
    registry, pairs = _registry("n0")
    envelope = SignedPayload.create(_request(), pairs["n0"])
    assert envelope.verify(registry)
    # Rotate n0's key: the old signature must stop verifying even
    # though a True verdict was cached against the old key.
    registry.register(KeyPair.generate("n0", seed=b"rotated"))
    assert not envelope.verify(registry)


# ----------------------------------------------------------------------
# KeyRegistry.secret_for (the sanctioned replacement for ._keys)
# ----------------------------------------------------------------------
def test_secret_for_known_node_returns_secret():
    registry, pairs = _registry("n0")
    assert registry.secret_for("n0") == pairs["n0"].secret


def test_secret_for_unknown_node_raises():
    registry, _ = _registry("n0")
    with pytest.raises(UnknownSignerError):
        registry.secret_for("ghost")


# ----------------------------------------------------------------------
# Authenticators: batch verification == loop verification
# ----------------------------------------------------------------------
def test_batch_verify_matches_sequential():
    registry, pairs = _registry("n0", "n1", "n2")
    receiver = "n2"
    items = []
    for sender in ("n0", "n1"):
        value = {"from": sender, "seq": 1}
        auth = make_authenticator(value, pairs[sender], (receiver,))
        verify_authenticator(value, auth, receiver, registry)  # no raise
        items.append((value, auth))
    verify_authenticator_batch(items, receiver, registry)  # no raise


def test_batch_verify_raises_on_one_bad_mac():
    registry, pairs = _registry("n0", "n1", "n2")
    good = {"ok": True}
    good_auth = make_authenticator(good, pairs["n0"], ("n2",))
    bad = {"ok": True}
    bad_auth = make_authenticator(bad, pairs["n1"], ("n2",))
    with pytest.raises(InvalidSignatureError):
        verify_authenticator_batch(
            [(good, good_auth), ({"ok": False}, bad_auth)],
            "n2", registry)


def test_batch_verify_unknown_sender_raises():
    registry, pairs = _registry("n0", "n1")
    value = {"x": 1}
    auth = make_authenticator(value, pairs["n0"], ("n1",))
    object.__setattr__(auth, "sender", "ghost")
    with pytest.raises(UnknownSignerError):
        verify_authenticator_batch([(value, auth)], "n1", registry)
