"""Unit tests for the WAN latency matrices."""

import random

import pytest

from repro.errors import ConfigurationError
from repro.sim.latency import (
    EXPERIMENT1,
    EXPERIMENT2,
    LOCAL,
    MUMBAI,
    SYDNEY,
    TOKYO,
    VIRGINIA,
    LatencyMatrix,
    uniform_matrix,
)


def test_experiment1_is_complete():
    EXPERIMENT1.validate()


def test_experiment2_is_complete():
    EXPERIMENT2.validate()


def test_symmetry():
    for matrix in (EXPERIMENT1, EXPERIMENT2):
        for a in matrix.regions:
            for b in matrix.regions:
                assert matrix.one_way(a, b) == matrix.one_way(b, a)


def test_intra_region_latency():
    assert EXPERIMENT1.one_way(TOKYO, TOKYO) == \
        EXPERIMENT1.intra_region_ms


def test_rtt_is_twice_one_way():
    assert EXPERIMENT1.rtt(VIRGINIA, TOKYO) == \
        pytest.approx(2 * EXPERIMENT1.one_way(VIRGINIA, TOKYO))


def test_unknown_pair_raises():
    with pytest.raises(ConfigurationError):
        EXPERIMENT1.one_way(VIRGINIA, "atlantis")


def test_triangle_inequality_roughly_holds():
    # WAN routing is not a metric space, but our calibrated values should
    # not be wildly anti-metric: direct <= 2.5x any relay path.
    m = EXPERIMENT1
    for a in m.regions:
        for b in m.regions:
            if a == b:
                continue
            direct = m.one_way(a, b)
            for via in m.regions:
                if via in (a, b):
                    continue
                relay = m.one_way(a, via) + m.one_way(via, b)
                assert direct <= 2.5 * relay


def test_jitter_bounds():
    rng = random.Random(42)
    base = EXPERIMENT1.one_way(VIRGINIA, SYDNEY)
    for _ in range(200):
        sample = EXPERIMENT1.sample_one_way(VIRGINIA, SYDNEY, rng,
                                            jitter_fraction=0.1)
        assert 0.9 * base <= sample <= 1.1 * base


def test_zero_jitter_is_deterministic():
    rng = random.Random(0)
    base = EXPERIMENT1.one_way(VIRGINIA, MUMBAI)
    assert EXPERIMENT1.sample_one_way(VIRGINIA, MUMBAI, rng, 0.0) == base


def test_uniform_matrix():
    m = uniform_matrix(["a", "b", "c"], one_way_ms=10.0)
    m.validate()
    assert m.one_way("a", "b") == 10.0
    assert m.one_way("b", "c") == 10.0
    assert m.one_way("a", "a") == m.intra_region_ms


def test_local_matrix_single_region():
    assert LOCAL.one_way("local", "local") == LOCAL.intra_region_ms


def test_table1_calibration_virginia_primary():
    """The matrix was calibrated so a Zyzzyva-style 3-step path from a
    Virginia client via a Virginia primary costs ~198ms (paper Table I).
    """
    m = EXPERIMENT1
    client = primary = VIRGINIA
    worst = max(m.one_way(primary, r) + m.one_way(r, client)
                for r in m.regions)
    total = m.one_way(client, primary) + worst
    assert total == pytest.approx(198, abs=15)


def test_table1_calibration_japan_client_virginia_primary():
    """Paper Table I row Japan, column Virginia: 236ms."""
    m = EXPERIMENT1
    client, primary = TOKYO, VIRGINIA
    worst = max(m.one_way(primary, r) + m.one_way(r, client)
                for r in m.regions)
    total = m.one_way(client, primary) + worst
    assert total == pytest.approx(236, abs=20)
