"""ezBFT checkpointing, log compaction, and state transfer.

The paper's owner-change payloads carry "instances executed or committed
since the last checkpoint"; these tests pin the machinery behind that:
periodic EZCHECKPOINT attestations, garbage collection below stable
checkpoints, shrunken recovery payloads, and snapshot-based catch-up for
replicas that fell behind a truncated log.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.instance import EntryStatus, LogEntry
from repro.messages.base import SignedPayload
from repro.messages.ezbft import EzCheckpoint, StateTransferReply
from repro.statemachine.base import Command
from repro.statemachine.checkpoint import Checkpoint
from repro.types import InstanceID

from helpers import DeliveryLog, assert_replicas_consistent, lan_cluster

INTERVAL = 8


def run_commands(cluster, client, n, key_fn=lambda i: f"k{i % 4}",
                 start=0):
    for i in range(start, start + n):
        client.submit(client.next_command("put", key_fn(i), i))
        cluster.run_until_idle()


# ----------------------------------------------------------------------
# Stability, agreement, and GC
# ----------------------------------------------------------------------
def test_checkpoints_stabilize_and_gc_log():
    cluster = lan_cluster(checkpoint_interval=INTERVAL)
    log = DeliveryLog()
    client = cluster.add_client("c0", "local", on_delivery=log.hook("c0"))
    run_commands(cluster, client, 5 * INTERVAL)
    assert log.results == ["OK"] * 5 * INTERVAL
    for replica in cluster.replicas.values():
        stable = replica.checkpoints.stable
        assert stable is not None
        assert stable.watermark >= 4 * INTERVAL
        assert replica.stats["checkpoints_stable"] >= 4
        assert replica.stats["log_entries_gcd"] >= 3 * INTERVAL
        # Everything below the stable frontier is gone from every
        # resident structure.
        frontier = stable.snapshot["frontier"]
        for owner, space in replica.spaces.items():
            assert space.low_slot == frontier[owner]
            assert all(e.instance.slot >= frontier[owner]
                       for e in space.entries())
        assert all(iid.slot >= frontier[iid.owner]
                   for iid in replica._log_index)
        assert len(replica.executor.history) < 2 * INTERVAL
    assert_replicas_consistent(cluster)


def test_stable_checkpoint_digests_agree_at_every_watermark():
    cluster = lan_cluster(checkpoint_interval=INTERVAL)
    client = cluster.add_client("c0", "local")
    run_commands(cluster, client, 4 * INTERVAL)
    logs = {rid: r.checkpoint_log for rid, r in cluster.replicas.items()}
    by_watermark = {}
    for rid, entries in logs.items():
        assert entries, f"{rid} stabilized no checkpoints"
        for watermark, state_digest in entries:
            by_watermark.setdefault(watermark, set()).add(state_digest)
    for watermark, digests in by_watermark.items():
        assert len(digests) == 1, (
            f"digest disagreement at watermark {watermark}: {digests}")


def test_history_prefixes_align_after_truncation():
    """Absolute execution positions stay comparable across replicas
    after each truncates a different-age prefix."""
    cluster = lan_cluster(checkpoint_interval=INTERVAL)
    client = cluster.add_client("c0", "local")
    # Single hot key -> totally ordered (interfering) history.
    run_commands(cluster, client, 4 * INTERVAL, key_fn=lambda i: "hot")
    replicas = list(cluster.replicas.values())
    for replica in replicas:
        assert replica.executor.executed_count == 4 * INTERVAL
        assert replica.executor.history_offset > 0
    by_position = {}
    for replica in replicas:
        offset = replica.executor.history_offset
        for pos, (iid, ident) in enumerate(replica.executor.history):
            by_position.setdefault(offset + pos, set()).add((iid, ident))
    for position, observed in by_position.items():
        assert len(observed) == 1, (
            f"divergent execution at position {position}: {observed}")


def test_gc_retains_reply_cache_and_exactly_once_state():
    cluster = lan_cluster(checkpoint_interval=INTERVAL)
    log = DeliveryLog()
    client = cluster.add_client("c0", "local", on_delivery=log.hook("c0"))
    run_commands(cluster, client, 3 * INTERVAL)
    replica = cluster.replicas["r0"]
    assert replica.stats["log_entries_gcd"] > 0
    # The per-client reply cache and timestamp floor survive GC, so a
    # duplicate of the latest request is answered from cache...
    assert "c0" in replica._client_reply_cache
    assert replica._client_ts["c0"] == 3 * INTERVAL
    # ...and every executed command is still deduplicated even though
    # the ident set was compacted to a per-client floor.
    for timestamp in range(1, 3 * INTERVAL + 1):
        assert replica.executor.has_executed(("c0", timestamp))
    assert not replica.executor.has_executed(("c0", 3 * INTERVAL + 1))


def test_checkpointing_disabled_with_zero_interval():
    cluster = lan_cluster(checkpoint_interval=0)
    client = cluster.add_client("c0", "local")
    run_commands(cluster, client, 3 * INTERVAL)
    for replica in cluster.replicas.values():
        assert replica.stats["checkpoints"] == 0
        assert replica.stats["log_entries_gcd"] == 0
        assert len(replica._log_index) == 3 * INTERVAL


def test_no_gc_without_attestation_quorum():
    """A replica that never hears peer attestations captures local
    checkpoints but must not stabilize or garbage-collect."""
    cluster = lan_cluster(checkpoint_interval=INTERVAL)
    deaf = cluster.replicas["r0"]
    original = deaf.on_message

    def drop_attestations(sender, message):
        payload = getattr(message, "payload", None)
        if isinstance(payload, EzCheckpoint):
            return
        original(sender, message)

    cluster.network.set_handler("r0", drop_attestations)
    client = cluster.add_client("c0", "local", target_replica="r1")
    run_commands(cluster, client, 3 * INTERVAL)
    assert deaf.stats["checkpoints"] >= 2  # it still captures locally
    assert deaf.checkpoints.stable is None  # only its own vote
    assert deaf.stats["log_entries_gcd"] == 0
    assert all(s.low_slot == 0 for s in deaf.spaces.values())
    # Its peers heard each other and garbage-collected normally.
    assert cluster.replicas["r1"].stats["log_entries_gcd"] > 0


# ----------------------------------------------------------------------
# Owner-change payloads above the stable checkpoint
# ----------------------------------------------------------------------
def test_owner_change_payload_starts_above_stable_checkpoint():
    cluster = lan_cluster(checkpoint_interval=INTERVAL)
    log = DeliveryLog()
    client = cluster.add_client("c0", "local", target_replica="r1",
                                on_delivery=log.hook("c0"))
    run_commands(cluster, client, 4 * INTERVAL)
    replica = cluster.replicas["r0"]
    base = replica.checkpoint_base_slot("r1")
    assert base >= 2 * INTERVAL
    summaries = replica.owner_changes._summarize_space("r1", base)
    # The recovery payload covers only the post-checkpoint suffix, not
    # the whole executed history.
    assert len(summaries) <= 2 * INTERVAL
    assert all(s.instance.slot >= base for s in summaries)


def test_owner_change_after_gc_preserves_consistency():
    """Depose an owner whose space has been GC'd: the finalized history
    must not resurrect (or no-op over) checkpoint-covered slots."""
    cluster = lan_cluster(checkpoint_interval=INTERVAL)
    log = DeliveryLog()
    client = cluster.add_client("c0", "local", target_replica="r1",
                                on_delivery=log.hook("c0"))
    run_commands(cluster, client, 3 * INTERVAL)
    assert log.results == ["OK"] * 3 * INTERVAL
    state_before = assert_replicas_consistent(cluster)
    for rid in ("r0", "r2", "r3"):
        cluster.replicas[rid].owner_changes.suspect("r1")
    cluster.run_until_idle()
    for rid in ("r0", "r2", "r3"):
        space = cluster.replicas[rid].spaces["r1"]
        assert space.frozen
        assert space.owner_number == 2
        # No noop backfill below the checkpoint base.
        assert all(not e.command.is_noop or e.instance.slot >=
                   cluster.replicas[rid].checkpoint_base_slot("r1")
                   for e in space.entries())
    assert assert_replicas_consistent(cluster) == state_before


# ----------------------------------------------------------------------
# State transfer
# ----------------------------------------------------------------------
def test_partitioned_replica_rejoins_via_state_transfer():
    """The tentpole recovery scenario: a replica is partitioned while
    the cluster GCs past it, then rejoins.  Without state transfer it
    would wait forever for truncated SPECORDERs; with it, it installs
    the latest stable snapshot and resumes live execution."""
    cluster = lan_cluster(checkpoint_interval=INTERVAL)
    log = DeliveryLog()
    client = cluster.add_client("c0", "local", target_replica="r0",
                                on_delivery=log.hook("c0"))
    cluster.network.isolate("r3")
    run_commands(cluster, client, 4 * INTERVAL)
    lagging = cluster.replicas["r3"]
    assert lagging.executor.executed_count == 0
    assert cluster.replicas["r0"].checkpoints.stable.watermark >= \
        3 * INTERVAL
    cluster.network.heal("r3")
    run_commands(cluster, client, 2 * INTERVAL, start=4 * INTERVAL)
    assert lagging.stats["state_transfers_installed"] >= 1
    assert sum(r.stats["state_transfers_served"]
               for r in cluster.replicas.values()) >= 1
    assert lagging.executor.executed_count == 6 * INTERVAL
    assert_replicas_consistent(cluster)
    # The rejoined replica now holds a stable checkpoint of its own and
    # participates in later ones.
    assert lagging.checkpoints.stable is not None


def test_state_transfer_reply_with_insufficient_proof_rejected():
    cluster = lan_cluster(checkpoint_interval=INTERVAL)
    client = cluster.add_client("c0", "local")
    run_commands(cluster, client, INTERVAL)
    replica = cluster.replicas["r0"]
    bogus = StateTransferReply(
        replica="r1", watermark=10 ** 6,
        snapshot={"state": {"evil": 1}, "frontier": {},
                  "client_floors": {}, "client_sparse": {},
                  "executed_above": []},
        proof=())
    before = dict(replica.stats)
    replica.on_message("r1", bogus)
    assert replica.stats["invalid_messages"] == \
        before["invalid_messages"] + 1
    assert replica.stats["state_transfers_installed"] == 0
    assert replica.statemachine.get_final("evil") is None


def test_state_transfer_reply_with_forged_signatures_rejected():
    cluster = lan_cluster(checkpoint_interval=INTERVAL)
    client = cluster.add_client("c0", "local")
    run_commands(cluster, client, INTERVAL)
    replica = cluster.replicas["r0"]
    snapshot = {"state": {"evil": 1}, "frontier": {},
                "client_floors": {}, "client_sparse": {},
                "executed_above": []}
    from repro.crypto.digest import digest as _digest
    # r1's key signs attestations *claiming* to be from every replica:
    # distinct-signer validation must reject the quorum.
    r1 = cluster.replicas["r1"]
    forged = tuple(
        SignedPayload.create(
            EzCheckpoint(replica=rid, watermark=10 ** 6,
                         state_digest=_digest(snapshot)),
            r1.keypair)
        for rid in cluster.config.replica_ids)
    bogus = StateTransferReply(replica="r1", watermark=10 ** 6,
                               snapshot=snapshot, proof=forged)
    replica.on_message("r1", bogus)
    assert replica.stats["state_transfers_installed"] == 0
    assert replica.statemachine.get_final("evil") is None


def test_capture_lands_on_interval_boundary_mid_wave():
    """A single commit wave can execute past an interval boundary; the
    capture must still happen exactly at the boundary watermark, or the
    attestation never matches other replicas' and GC wedges."""
    cluster = lan_cluster(checkpoint_interval=4)
    replica = cluster.replicas["r2"]
    entries = []
    prev = None
    for slot in range(6):  # one dependency chain, executed as one wave
        command = Command(client_id="cw", timestamp=slot + 1, op="put",
                          key="hot", value=slot)
        entry = LogEntry(
            instance=InstanceID("r0", slot), owner_number=0,
            command=command,
            deps=(prev,) if prev is not None else (),
            seq=slot + 1, status=EntryStatus.COMMITTED)
        replica.spaces["r0"].put(entry)
        replica._index_entry(entry)
        prev = entry.instance
        entries.append(entry)
    replica._advance_execution(entries)
    assert replica.executor.executed_count == 6
    assert replica.stats["checkpoints"] == 1
    assert replica.checkpoints.last_captured == 4  # not 6


def test_byzantine_watermark_flood_is_bounded():
    from repro.statemachine.checkpoint import CheckpointStore

    store = CheckpointStore(quorum=3, interval=10)
    for k in range(200):
        store.attest(10 * (k + 1), f"d{k}", "byz")
    live = [key for key in store._votes if key[0] == "byz"]
    assert len(live) <= CheckpointStore.MAX_VOTES_PER_REPLICA
    assert len(store._attestations) <= CheckpointStore.MAX_VOTES_PER_REPLICA
    # The surviving votes are the most recent ones.
    assert max(w for _, w in live) == 2000


def test_state_transfer_asks_multiple_peers_but_each_once():
    cluster = lan_cluster(checkpoint_interval=INTERVAL)
    replica = cluster.replicas["r0"]
    target = replica.executor.executed_count + 10 * INTERVAL
    replica._maybe_request_state_transfer(target, "r1")
    replica._maybe_request_state_transfer(target, "r1")  # duplicate
    replica._maybe_request_state_transfer(target, "r2")
    assert replica._transfer_peers_asked == {"r1", "r2"}
    # Capped at f+1 distinct peers per watermark.
    replica._maybe_request_state_transfer(target, "r3")
    assert len(replica._transfer_peers_asked) == \
        cluster.config.weak_quorum_size
    # A higher watermark resets the ask set.
    replica._maybe_request_state_transfer(target + INTERVAL, "r3")
    assert replica._transfer_peers_asked == {"r3"}


def test_gap_fill_never_noops_checkpoint_covered_slots():
    """A slot GC'd at one owner-change reporter (covered by its stable
    checkpoint) but lacking a quorum of candidates must be omitted from
    the finalized history, not finalized as a no-op: a no-op there
    would overwrite the durably executed command at lagging replicas."""
    from repro.messages.ezbft import LogEntrySummary, OwnerChange

    cluster = lan_cluster()
    manager = cluster.replicas["r2"].owner_changes
    cmd = Command(client_id="ca", timestamp=1, op="put", key="k",
                  value="real")
    top = Command(client_id="cb", timestamp=1, op="put", key="k2",
                  value="top")

    def entry(slot, command, kind, status):
        return LogEntrySummary(
            instance=InstanceID("r1", slot), command=command, deps=(),
            seq=1, status=status, owner_number=1, proof_kind=kind)

    messages = [
        # Reporter X GC'd slots < 3 at its stable checkpoint.
        OwnerChange(sender="r0", suspect="r1", new_owner_number=2,
                    base_slot=3,
                    entries=(entry(4, top, "commit", "committed"),)),
        # Reporter Y still holds slot 1 spec-ordered only (it missed
        # the commit) -- a single candidate, below Condition 2's bar.
        OwnerChange(sender="r3", suspect="r1", new_owner_number=2,
                    base_slot=0,
                    entries=(entry(1, cmd, "spec-order", "spec-ordered"),
                             entry(4, top, "commit", "committed"))),
    ]
    safe = manager._select_safe_history(messages, base_slot=0)
    by_slot = {s.instance.slot: s for s in safe}
    # Slot 1 is checkpoint-covered at reporter X: omitted, never nooped.
    assert 1 not in by_slot
    # Slots >= the highest reported base still get the paper's no-op
    # gap fill (slot 3), and real candidates survive (slot 4).
    assert by_slot[3].command.is_noop
    assert by_slot[4].command == top


def test_install_resets_frontier_cursor():
    """After a state transfer, the cached contiguous-executed cursor
    must restart at the installed frontier -- entries above it were
    demoted for re-execution, and a stale cursor would let a capture
    (or GC clamp) claim them executed while they are not."""
    cluster = lan_cluster(checkpoint_interval=INTERVAL)
    log = DeliveryLog()
    client = cluster.add_client("c0", "local", target_replica="r0",
                                on_delivery=log.hook("c0"))
    cluster.network.isolate("r3")
    run_commands(cluster, client, 3 * INTERVAL)
    lagging = cluster.replicas["r3"]
    lagging._frontier_cursor["r0"] = 10 ** 6  # poison: stale progress
    cluster.network.heal("r3")
    run_commands(cluster, client, INTERVAL, start=3 * INTERVAL)
    assert lagging.stats["state_transfers_installed"] >= 1
    frontier = lagging.checkpoints.stable.snapshot["frontier"]
    # The cursor was re-anchored and tracks the true frontier again.
    assert lagging._frontier_cursor["r0"] <= \
        lagging.spaces["r0"].expected_slot
    assert lagging._executed_frontier(lagging.spaces["r0"]) >= \
        frontier["r0"]
    assert_replicas_consistent(cluster)


def test_replayed_commit_below_checkpoint_does_not_resurrect_slot():
    """A client's retransmitted slow-path COMMIT for a GC'd instance
    must not re-install the slot: that would inflate this replica's
    execution count and desync every later checkpoint watermark."""
    from repro.byzantine import SilentReplica, install_byzantine
    from repro.messages.ezbft import Commit

    cluster = lan_cluster(checkpoint_interval=INTERVAL)
    log = DeliveryLog()
    client = cluster.add_client("c0", "local", target_replica="r0",
                                on_delivery=log.hook("c0"))
    # Force slow-path commits (no fast quorum) so the client mints
    # signed COMMITs, and capture them off the wire for replay.
    install_byzantine(cluster, "r3", SilentReplica)
    replica = cluster.replicas["r0"]
    original = replica.on_message
    commits = []

    def capturing(sender, message):
        payload = getattr(message, "payload", None)
        if isinstance(payload, Commit):
            commits.append((sender, message))
        original(sender, message)

    cluster.network.set_handler("r0", capturing)
    run_commands(cluster, client, 2 * INTERVAL)
    assert "slow" in log.paths
    assert replica.stats["log_entries_gcd"] > 0
    # Pick a captured commit whose slot has since been GC'd.
    low = replica.spaces["r0"].low_slot
    assert low > 0
    replayable = [(s, m) for s, m in commits
                  if m.payload.instance.slot < low]
    assert replayable
    count_before = replica.executor.executed_count
    for sender, envelope in replayable:
        capturing(sender, envelope)  # genuine signed commit, replayed
    cluster.run_until_idle()
    assert replica.executor.executed_count == count_before
    assert all(m.payload.instance not in replica._log_index
               for _, m in replayable)
    assert replica.spaces["r0"].low_slot >= low


def test_replayed_self_attestation_is_not_a_second_vote():
    """A byzantine peer replaying r0's own signed EZCHECKPOINT back at
    r0 must not count as a voter distinct from r0's '__self__' vote --
    that would fake a 2f+1 quorum out of f+1 real replicas."""
    cluster = lan_cluster(checkpoint_interval=INTERVAL)
    deaf = cluster.replicas["r0"]
    original = deaf.on_message
    captured = []

    def intercept(sender, message):
        payload = getattr(message, "payload", None)
        if isinstance(payload, EzCheckpoint):
            if payload.replica == "r0":
                captured.append(message)
            return  # silence real peer attestations
        original(sender, message)

    cluster.network.set_handler("r0", intercept)
    # r0's outgoing attestations pass through the network loopback?  No
    # -- broadcast excludes self, so grab them from a peer's inbox via
    # the proof store after a capture instead: simplest is to replay
    # r0's own envelope, which we reconstruct by signing as r0 does.
    client = cluster.add_client("c0", "local", target_replica="r1")
    run_commands(cluster, client, 2 * INTERVAL)
    assert deaf.stats["checkpoints"] >= 1
    own = deaf._checkpoint_proofs  # r0's own envelopes live here
    replayed = [env for bucket in own.values() for env in bucket.values()
                if env.signer == "r0"]
    assert replayed
    before = deaf.checkpoints.attestation_count(
        replayed[0].payload.watermark, replayed[0].payload.state_digest)
    for env in replayed:
        original("byz", env)  # byzantine replay of r0's own attestation
        original("byz", env)
    after = deaf.checkpoints.attestation_count(
        replayed[0].payload.watermark, replayed[0].payload.state_digest)
    assert after == before  # no extra voters appeared
    assert deaf.checkpoints.stable is None


def test_state_transfer_request_with_spoofed_target_rejected():
    cluster = lan_cluster(checkpoint_interval=INTERVAL)
    client = cluster.add_client("c0", "local")
    run_commands(cluster, client, 2 * INTERVAL)
    from repro.messages.ezbft import StateTransferRequest
    serving = cluster.replicas["r1"]
    assert serving.checkpoints.stable is not None
    before = serving.stats["state_transfers_served"]
    # Sender does not match the claimed reply target.
    serving.on_message("r2", StateTransferRequest(replica="r3",
                                                  have_watermark=0))
    # Target is not a replica at all.
    serving.on_message("c0", StateTransferRequest(replica="c0",
                                                  have_watermark=0))
    assert serving.stats["state_transfers_served"] == before


def test_forged_log_suffix_entries_are_rejected():
    """The suffix is outside the digest-proven snapshot: a faulty peer
    shipping a genuine snapshot plus fabricated 'committed' entries
    must not get them installed."""
    cluster = lan_cluster(checkpoint_interval=INTERVAL)
    log = DeliveryLog()
    client = cluster.add_client("c0", "local", target_replica="r0",
                                on_delivery=log.hook("c0"))
    cluster.network.isolate("r3")
    run_commands(cluster, client, 3 * INTERVAL)
    serving = cluster.replicas["r1"]
    stable = serving.checkpoints.stable
    assert stable is not None
    evil = Command(client_id="cx", timestamp=1, op="put", key="pwned",
                   value="yes")
    from repro.messages.ezbft import LogEntrySummary
    forged = LogEntrySummary(
        instance=InstanceID("r0", stable.snapshot["frontier"]["r0"] + 1),
        command=evil, deps=(), seq=1, status="committed",
        owner_number=0, proof_kind="commit",
        # Validly signed -- but not a commit certificate for this entry.
        proof=tuple(serving._stable_proof[:3]))
    reply = StateTransferReply(
        replica="r1", watermark=stable.watermark,
        snapshot=stable.snapshot, proof=serving._stable_proof,
        entries=(forged,))
    lagging = cluster.replicas["r3"]
    lagging.on_message("r1", reply)
    # The proven snapshot installs; the fabricated entry does not.
    assert lagging.stats["state_transfers_installed"] == 1
    assert lagging.executor.executed_count == stable.watermark
    assert forged.instance not in lagging._log_index
    assert lagging.statemachine.get_final("pwned") is None


# ----------------------------------------------------------------------
# Hypothesis: GC never drops an unexecuted committed instance
# ----------------------------------------------------------------------
@settings(max_examples=50, deadline=None)
@given(statuses=st.lists(
    st.sampled_from([EntryStatus.EXECUTED, EntryStatus.COMMITTED,
                     EntryStatus.SPEC_ORDERED]),
    min_size=1, max_size=24),
    claimed_cut=st.integers(min_value=0, max_value=30))
def test_gc_never_drops_unexecuted_committed_instance(statuses,
                                                      claimed_cut):
    cluster = lan_cluster()
    replica = cluster.replicas["r2"]
    space = replica.spaces["r0"]
    for slot, status in enumerate(statuses):
        command = Command(client_id="cq", timestamp=slot + 1, op="put",
                          key=f"k{slot}", value=slot)
        entry = LogEntry(instance=InstanceID("r0", slot),
                         owner_number=0, command=command, deps=(),
                         seq=slot + 1, status=status)
        space.put(entry)
        replica._index_entry(entry)
        if status == EntryStatus.EXECUTED:
            replica.executor.executed.add(entry.instance)
    committed_unexecuted = {
        InstanceID("r0", slot) for slot, status in enumerate(statuses)
        if status != EntryStatus.EXECUTED
    }
    # An (over-)aggressive frontier claim: GC must clamp to the local
    # contiguous-executed prefix regardless.
    checkpoint = Checkpoint.capture(0, {
        "state": {}, "frontier": {"r0": claimed_cut},
        "client_floors": {}, "client_sparse": {}, "executed_above": []})
    replica._gc_below(checkpoint)
    for iid in committed_unexecuted:
        assert iid in replica._log_index, (
            f"GC dropped unexecuted instance {iid}")
        assert space.get(iid.slot) is not None
