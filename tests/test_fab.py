"""FaB baseline: two-step agreement, quorum sizes, fault tolerance."""

import pytest

from repro.byzantine import silence_node

from helpers import (
    DeliveryLog,
    assert_replicas_consistent,
    lan_cluster,
)


def test_single_request_commits():
    cluster = lan_cluster("fab")
    log = DeliveryLog()
    client = cluster.add_client("c0", "local",
                                on_delivery=log.hook("c0"))
    client.submit(client.next_command("put", "k", "v"))
    cluster.run_until_idle()
    assert log.results == ["OK"]
    assert_replicas_consistent(cluster)


def test_four_step_latency_shape():
    """FaB: request + propose + accept + reply = 4 one-way hops."""
    cluster = lan_cluster("fab")
    log = DeliveryLog()
    client = cluster.add_client("c0", "local",
                                on_delivery=log.hook("c0"))
    client.submit(client.next_command("put", "k", "v"))
    cluster.run_until_idle()
    assert log.latencies()[0] == pytest.approx(0.4, abs=0.05)


def test_accept_quorum_size_n4():
    cluster = lan_cluster("fab")
    replica = cluster.replicas["r0"]
    # ceil((4 + 1 + 1) / 2) = 3.
    assert replica.accept_quorum == 3


def test_sequential_ordering():
    cluster = lan_cluster("fab")
    log = DeliveryLog()
    client = cluster.add_client("c0", "local",
                                on_delivery=log.hook("c0"))
    for i in range(4):
        client.submit(client.next_command("put", "k", i))
        cluster.run_until_idle()
    state = assert_replicas_consistent(cluster)
    assert state == {"k": 3}


def test_tolerates_one_silent_acceptor():
    cluster = lan_cluster("fab")
    silence_node(cluster, "r3")
    log = DeliveryLog()
    client = cluster.add_client("c0", "local",
                                on_delivery=log.hook("c0"))
    client.submit(client.next_command("put", "k", "v"))
    cluster.run_until_idle()
    assert log.results == ["OK"]
    assert_replicas_consistent(cluster, exclude=("r3",))


def test_concurrent_clients():
    cluster = lan_cluster("fab")
    log = DeliveryLog()
    for i in range(3):
        client = cluster.add_client(f"c{i}", "local",
                                    on_delivery=log.hook(f"c{i}"))
        client.submit(client.next_command("put", "shared", i))
    cluster.run_until_idle()
    assert len(log.records) == 3
    assert_replicas_consistent(cluster)


def test_acceptor_accepts_one_value_per_slot():
    cluster = lan_cluster("fab")
    client = cluster.add_client("c0", "local")
    client.submit(client.next_command("put", "k", "v"))
    cluster.run_until_idle()
    replica = cluster.replicas["r1"]
    from repro.crypto.digest import digest
    from repro.messages.fab import FabPropose, FabRequest

    evil = FabRequest(command=client.next_command("put", "k", "EVIL"))
    conflicting = FabPropose(proposal_number=replica.view, seqno=0,
                             request_digest=digest(evil.to_wire()),
                             request=evil)
    replica._on_propose("r0", conflicting)
    cluster.run_until_idle()
    slot = replica._slots[0]
    assert slot.request.command.value == "v"  # first value sticks
