"""Cross-protocol integration tests with the shapes the paper reports.

These are the qualitative claims of the evaluation section, asserted at
small scale so the full suite stays fast; the benchmarks print the full
tables.
"""

import pytest

from repro.cluster.builder import build_cluster
from repro.sim.latency import EXPERIMENT1, EXPERIMENT2
from repro.workload.drivers import ClosedLoopDriver
from repro.workload.generator import KVWorkload

from helpers import DeliveryLog, GEO_REGIONS


def measure_latency(protocol, client_region, primary_region="virginia",
                    contention=0.0, requests=4, latency=EXPERIMENT1,
                    regions=None):
    cluster = build_cluster(protocol, regions or GEO_REGIONS, latency,
                            primary_region=primary_region,
                            slow_path_timeout=400.0)
    log = DeliveryLog()
    client = cluster.add_client("c0", client_region,
                                on_delivery=log.hook("c0"))
    workload = KVWorkload("c0", contention=contention, seed=1)
    driver = ClosedLoopDriver(client, workload, num_requests=requests)
    driver.start()
    cluster.run_until_idle()
    assert driver.done
    samples = log.latencies()
    return sum(samples) / len(samples)


def test_step_count_ordering_pbft_fab_zyzzyva():
    """Figure 4's protocol ordering: PBFT > FaB > Zyzzyva everywhere."""
    for region in ("virginia", "tokyo"):
        pbft = measure_latency("pbft", region)
        fab = measure_latency("fab", region)
        zyzzyva = measure_latency("zyzzyva", region)
        assert pbft > fab > zyzzyva


def test_ezbft_matches_zyzzyva_at_primary_region():
    """Figure 4: in the primary's own region the two are equivalent
    (same step count, same local first hop)."""
    zyzzyva = measure_latency("zyzzyva", "virginia")
    ezbft = measure_latency("ezbft", "virginia")
    assert ezbft == pytest.approx(zyzzyva, rel=0.1)


def test_ezbft_beats_zyzzyva_at_remote_regions():
    """Figure 4's headline: remote clients save the first hop."""
    for region in ("tokyo", "mumbai", "sydney"):
        zyzzyva = measure_latency("zyzzyva", region)
        ezbft = measure_latency("ezbft", region)
        assert ezbft < zyzzyva, region


def test_ezbft_improvement_up_to_40_percent():
    """The abstract's claim: up to ~40% latency reduction.  With the
    primary in Virginia, some remote region sees >=25% improvement."""
    improvements = []
    for region in ("tokyo", "mumbai", "sydney"):
        zyzzyva = measure_latency("zyzzyva", region)
        ezbft = measure_latency("ezbft", region)
        improvements.append((zyzzyva - ezbft) / zyzzyva)
    assert max(improvements) >= 0.25


def test_ezbft_full_contention_approaches_pbft():
    """Figure 4: at 100% contention (concurrent interfering commands
    from every region) ezBFT needs five steps, costing about as much as
    PBFT's five steps."""
    pbft = measure_latency("pbft", "tokyo")

    # Contention requires *concurrent* clients: one per region, all
    # writing the hot key, exactly the paper's setup.
    cluster = build_cluster("ezbft", GEO_REGIONS, EXPERIMENT1,
                            slow_path_timeout=400.0)
    log = DeliveryLog()
    drivers = []
    for i, region in enumerate(GEO_REGIONS):
        client = cluster.add_client(f"c{i}", region,
                                    on_delivery=log.hook(f"c{i}"))
        workload = KVWorkload(f"c{i}", contention=1.0, seed=i)
        drivers.append(ClosedLoopDriver(client, workload,
                                        num_requests=6))
    for driver in drivers:
        driver.start()
    cluster.run_until_idle()
    tokyo_samples = cluster.recorder.samples("tokyo")
    ezbft_contended = sum(tokyo_samples) / len(tokyo_samples)
    assert ezbft_contended == pytest.approx(pbft, rel=0.6)
    ezbft_free = measure_latency("ezbft", "tokyo")
    assert ezbft_contended > ezbft_free


def test_experiment2_ireland_primary_is_zyzzyvas_best_case():
    """Figure 5a: with overlapping European paths, Zyzzyva at its best
    placement is close to ezBFT."""
    regions = ["ohio", "ireland", "frankfurt", "mumbai"]
    gaps = []
    for client_region in regions:
        zyzzyva = measure_latency("zyzzyva", client_region,
                                  primary_region="ireland",
                                  latency=EXPERIMENT2, regions=regions)
        ezbft = measure_latency("ezbft", client_region,
                                primary_region="ireland",
                                latency=EXPERIMENT2, regions=regions)
        gaps.append((zyzzyva - ezbft) / zyzzyva)
    # Average advantage well under the Experiment-1 headline.
    assert sum(gaps) / len(gaps) < 0.25


def test_experiment2_bad_primary_hurts_zyzzyva():
    """Figure 5b: moving the primary to Mumbai inflates Zyzzyva's
    latency for European clients far beyond ezBFT's."""
    regions = ["ohio", "ireland", "frankfurt", "mumbai"]
    zyzzyva_bad = measure_latency("zyzzyva", "ireland",
                                  primary_region="mumbai",
                                  latency=EXPERIMENT2, regions=regions)
    ezbft = measure_latency("ezbft", "ireland",
                            primary_region="ireland",
                            latency=EXPERIMENT2, regions=regions)
    assert ezbft < 0.8 * zyzzyva_bad


def test_all_protocols_agree_on_final_state():
    """The same workload produces the same replicated state under every
    protocol (they implement the same service)."""
    states = {}
    for protocol in ("ezbft", "pbft", "zyzzyva", "fab"):
        cluster = build_cluster(protocol, GEO_REGIONS, EXPERIMENT1,
                                primary_region="virginia")
        log = DeliveryLog()
        client = cluster.add_client("c0", "virginia",
                                    on_delivery=log.hook("c0"))
        for i in range(3):
            client.submit(client.next_command("put", f"k{i}", i))
            cluster.run_until_idle()
        kv = cluster.replicas["r0"].statemachine
        if protocol == "zyzzyva":
            # Zyzzyva's fast path leaves state speculative.
            state = {f"k{i}": kv.get_speculative(f"k{i}")
                     for i in range(3)}
        else:
            state = {f"k{i}": kv.get_final(f"k{i}") for i in range(3)}
        states[protocol] = state
    assert len({tuple(sorted(s.items())) for s in states.values()}) == 1
