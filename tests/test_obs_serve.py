"""ServeSession end to end (single process) and the signed control
channel's verification ladder.

The two-process deployment test lives in test_obs_control_remote.py;
here everything runs in one event loop: a served replica subset with
port-0 obs endpoints, live scrapes, signed fault delivery, and a drain
that must leave the loop with no pending tasks.
"""

import asyncio
import json
import socket

import pytest

from repro.errors import ConfigurationError
from repro.obs import ServeSession, fetch_json, http_request
from repro.obs.control import (
    ControlChannel,
    ControlClient,
    control_keypair,
    sign_event,
)
from repro.scenario import Scenario, WorkloadSpec
from repro.scenario.faults import CrashReplica, PacketLoss


def _free_port() -> int:
    with socket.socket() as sock:
        sock.bind(("127.0.0.1", 0))
        return sock.getsockname()[1]


def _scenario() -> Scenario:
    return Scenario(
        name="obs-serve-test",
        protocol="ezbft",
        replica_regions=("local",) * 4,
        latency="local",
        hosts={"r2": f"127.0.0.1:{_free_port()}",
               "r3": f"127.0.0.1:{_free_port()}"},
        workload=WorkloadSpec(mode="closed", clients_per_region=1,
                              requests_per_client=2),
        seed=5,
        backends=("tcp",),
    )


def _session(**kwargs) -> ServeSession:
    return ServeSession(
        _scenario(), ("r2", "r3"),
        obs_addresses={"r2": ("127.0.0.1", 0),
                       "r3": ("127.0.0.1", 0)},
        **kwargs)


# ----------------------------------------------------------------------
# Session lifecycle
# ----------------------------------------------------------------------
def test_serve_session_scrape_control_and_drain(tmp_path):
    snapshot_path = tmp_path / "snapshot.json"

    async def run():
        session = _session(snapshot_path=str(snapshot_path))
        await session.start()
        host, port = session.endpoints["r2"]

        health = json.loads(
            (await http_request(host, port, "/healthz"))[1])
        assert health["status"] == "ok"
        assert health["replica"] == "r2"

        snap = await fetch_json(host, port, "/metrics.json")
        stats = {s["labels"]["stat"]: s["value"]
                 for f in snap["metrics"]
                 if f["name"] == "repro_replica_stat"
                 for s in f["samples"]
                 if s["labels"]["replica"] == "r2"}
        assert "executed" in stats

        client = ControlClient()
        result = await client.send(
            host, port, CrashReplica(at_ms=0.0, replica="r2"))
        assert result["applied"] is True
        assert session.injector.is_crashed("r2")
        health = json.loads(
            (await http_request(host, port, "/healthz"))[1])
        assert health["status"] == "degraded"
        assert health["crashed"] is True

        await session.drain()
        # The endpoint is down after drain.
        with pytest.raises(OSError):
            await http_request(host, port, "/healthz", timeout=1.0)
        pending = [t for t in asyncio.all_tasks()
                   if t is not asyncio.current_task()]
        assert pending == [], f"drain left tasks: {pending}"
        return session

    session = asyncio.run(run())
    payload = json.loads(snapshot_path.read_text())
    assert payload["schema_version"] == 1
    assert payload["replicas"] == ["r2", "r3"]
    assert payload["health"]["r2"]["crashed"] is True
    assert any(f["name"] == "repro_control_events_total"
               for f in payload["metrics"]["metrics"])
    assert session.endpoints  # still introspectable post-drain


def test_serve_session_rejects_unhosted_replica():
    scenario = _scenario()
    with pytest.raises(ConfigurationError, match="r1"):
        ServeSession(scenario, ("r1",))


def test_sigterm_drains_and_writes_snapshot(tmp_path):
    import os
    import signal
    import subprocess
    import sys

    from repro.scenario import save_spec

    scenario = _scenario().with_overrides(
        obs={"r2": f"127.0.0.1:{_free_port()}"})
    spec_path = tmp_path / "serve.json"
    snapshot_path = tmp_path / "final-snapshot.json"
    save_spec(scenario, str(spec_path))

    src = os.path.join(os.path.dirname(os.path.dirname(
        os.path.abspath(__file__))), "src")
    env = dict(os.environ)
    env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
    server = subprocess.Popen(
        [sys.executable, "-m", "repro", "serve",
         "--spec", str(spec_path), "--replicas", "r2,r3",
         "--snapshot", str(snapshot_path), "--json-logs"],
        stdout=subprocess.PIPE, stderr=subprocess.PIPE,
        text=True, env=env)
    try:
        line = server.stdout.readline()
        assert "serving r2@" in line, f"serve did not come up: {line!r}"
        server.send_signal(signal.SIGTERM)
        out, err = server.communicate(timeout=15)
    except BaseException:
        server.kill()
        server.wait()
        raise
    assert server.returncode == 0, (out, err)

    payload = json.loads(snapshot_path.read_text())
    assert payload["schema_version"] == 1
    assert payload["replicas"] == ["r2", "r3"]
    assert set(payload["health"]) == {"r2", "r3"}
    # --json-logs: every stderr log line is one JSON object carrying
    # the run context.
    log_lines = [ln for ln in err.splitlines() if ln.strip()]
    assert log_lines, "expected structured log output on stderr"
    for ln in log_lines:
        record = json.loads(ln)
        assert record["run"] == scenario.name


# ----------------------------------------------------------------------
# Control-channel verification ladder (no sockets needed)
# ----------------------------------------------------------------------
def _channel(applied):
    return ControlChannel(applied.append, ("r0", "r1", "r2", "r3"))


def test_control_channel_applies_signed_event():
    applied = []
    channel = _channel(applied)
    body = sign_event(CrashReplica(at_ms=0.0, replica="r1"),
                      control_keypair())
    status, payload = channel.handle(body)
    assert status == 200 and payload["applied"] is True
    assert len(applied) == 1
    assert isinstance(applied[0], CrashReplica)


def test_control_channel_rejects_garbage_and_missing_keys():
    channel = _channel([])
    assert channel.handle(b"not json")[0] == 400
    assert channel.handle(b'{"v": 1}')[0] == 400
    assert channel.handle(b'"just a string"')[0] == 400


def test_control_channel_rejects_bad_signature():
    applied = []
    channel = _channel(applied)
    wrong_key = control_keypair(seed=b"some-other-deployment")
    body = sign_event(CrashReplica(at_ms=0.0, replica="r1"), wrong_key)
    status, payload = channel.handle(body)
    assert status == 403
    assert applied == []


def test_control_channel_rejects_tampered_event():
    applied = []
    channel = _channel(applied)
    body = sign_event(PacketLoss(at_ms=0.0, probability=0.1),
                      control_keypair())
    envelope = json.loads(body)
    envelope["event"]["probability"] = 1.0  # MAC no longer covers it
    status, _ = channel.handle(json.dumps(envelope).encode())
    assert status == 403
    assert applied == []


def test_control_channel_rejects_replay():
    applied = []
    channel = _channel(applied)
    body = sign_event(CrashReplica(at_ms=0.0, replica="r1"),
                      control_keypair(), nonce="fixed-nonce")
    assert channel.handle(body)[0] == 200
    status, payload = channel.handle(body)
    assert status == 409
    assert "replay" in payload["error"]
    assert len(applied) == 1


def test_control_channel_nonce_window_is_bounded():
    # The replay set must not grow without bound under a long-lived
    # deployment; it evicts in insertion order past MAX_SEEN_NONCES.
    applied = []
    channel = _channel(applied)
    channel.MAX_SEEN_NONCES = 8  # instance override for test speed
    for i in range(8 + 3):
        body = sign_event(CrashReplica(at_ms=0.0, replica="r1"),
                          control_keypair(), nonce=f"nonce-{i}")
        assert channel.handle(body)[0] == 200
    assert len(channel._seen_nonces) == 8

    # Replay WITHIN the window still 409s...
    recent = sign_event(CrashReplica(at_ms=0.0, replica="r1"),
                        control_keypair(), nonce="nonce-10")
    assert channel.handle(recent)[0] == 409
    # ...while a nonce old enough to have been evicted is accepted
    # again (the documented trade-off of a bounded window).
    evicted = sign_event(CrashReplica(at_ms=0.0, replica="r1"),
                         control_keypair(), nonce="nonce-0")
    assert channel.handle(evicted)[0] == 200


def test_control_channel_rejects_invalid_event():
    channel = _channel([])
    # Unknown replica id fails FaultEvent.validate -> 422.
    body = sign_event(CrashReplica(at_ms=0.0, replica="r9"),
                      control_keypair())
    status, payload = channel.handle(body)
    assert status == 422
    assert "r9" in payload["error"]


def test_control_channel_apply_failure_is_500():
    def boom(event):
        raise RuntimeError("injector exploded")

    channel = ControlChannel(boom, ("r0", "r1", "r2", "r3"))
    body = sign_event(CrashReplica(at_ms=0.0, replica="r1"),
                      control_keypair())
    status, payload = channel.handle(body)
    assert status == 500
    assert "injector exploded" in payload["error"]


# ----------------------------------------------------------------------
# Live tracing (/trace) + endpoint-named failures
# ----------------------------------------------------------------------
def test_serve_session_trace_endpoint():
    async def run():
        session = _session(trace=True, trace_ring=16)
        await session.start()
        try:
            # The tracer is attached to every hosted replica and its
            # transport node (one shared ring per process).
            for rid in ("r2", "r3"):
                assert session.cluster.nodes[rid].tracer \
                    is session.tracer
                assert session.cluster.replicas[rid].tracer \
                    is session.tracer
            host, port = session.endpoints["r2"]
            body = await fetch_json(host, port, "/trace")
            assert body["schema"] == 1
            assert body["span_count"] == 0  # no client traffic yet
            assert body["dropped_spans"] == 0
            assert body["spans"] == []
        finally:
            await session.drain()

    asyncio.run(run())


def test_serve_session_trace_404_when_disabled():
    from repro.errors import TransportError

    async def run():
        session = _session()
        await session.start()
        try:
            assert session.tracer is None
            host, port = session.endpoints["r2"]
            with pytest.raises(TransportError, match="404"):
                await fetch_json(host, port, "/trace")
        finally:
            await session.drain()

    asyncio.run(run())


def test_control_send_failure_names_endpoint():
    from repro.errors import TransportError

    port = _free_port()  # nothing listens here

    async def run():
        client = ControlClient()
        with pytest.raises(TransportError) as exc:
            await client.send("127.0.0.1", port,
                              CrashReplica(at_ms=0.0, replica="r1"),
                              timeout=1.0)
        message = str(exc.value)
        assert f"POST /control on 127.0.0.1:{port}" in message
        assert "CrashReplica" in message

    asyncio.run(run())


def test_scrape_failure_names_endpoint():
    from repro.obs import scrape_replica_stats

    port = _free_port()  # nothing listens here

    async def run():
        errors = []
        stats = await scrape_replica_stats(
            {"r7": ("127.0.0.1", port)}, timeout=1.0, errors=errors)
        assert stats == {"r7": None}
        assert len(errors) == 1
        assert f"127.0.0.1:{port}" in errors[0]
        assert "r7" in errors[0]
        assert "/metrics.json" in errors[0]

    asyncio.run(run())
