"""Two-process control-channel delivery: a scenario process drives a
fault into a replica hosted by a separate ``repro serve`` process.

This used to be a hard rejection ("replica-targeted faults only reach
locally hosted replicas"); with an ``obs`` endpoint declared for the
remote replica, the runner signs the event and POSTs it to the serving
process's ``/control``, which applies it through its own injector.
The serve process's ``/healthz`` is the ground truth that the fault
really landed on the other side of the process boundary.
"""

import asyncio
import json
import os
import socket
import subprocess
import sys

from repro.obs import ScrapeConfig, http_request
from repro.scenario import (
    CrashReplica,
    RecoverReplica,
    Scenario,
    ScenarioRunner,
    WorkloadSpec,
    save_spec,
)

SRC = os.path.join(os.path.dirname(os.path.dirname(
    os.path.abspath(__file__))), "src")


def _free_port() -> int:
    with socket.socket() as sock:
        sock.bind(("127.0.0.1", 0))
        return sock.getsockname()[1]


def _scenario(replica_port: int, obs_port: int) -> Scenario:
    return Scenario(
        name="obs-remote-fault",
        protocol="ezbft",
        replica_regions=("local",) * 4,
        latency="local",
        hosts={"r3": f"127.0.0.1:{replica_port}"},
        obs={"r3": f"127.0.0.1:{obs_port}"},
        workload=WorkloadSpec(mode="closed", clients_per_region=1,
                              requests_per_client=4,
                              think_time_ms=20.0),
        # r3 is crashed mid-run and recovered before the end; ezBFT
        # with n=4 tolerates the one failure throughout.
        faults=(CrashReplica(at_ms=250.0, replica="r3"),
                RecoverReplica(at_ms=900.0, replica="r3")),
        seed=12,
        slow_path_timeout=300.0,
        retry_timeout=2000.0,
        suspicion_timeout=30_000.0,
        view_change_timeout=30_000.0,
        backends=("tcp",),
    )


def _healthz(host: str, port: int) -> dict:
    status, body = asyncio.run(http_request(host, port, "/healthz"))
    assert status == 200
    return json.loads(body)


def test_remote_fault_delivered_over_control(tmp_path):
    replica_port, obs_port = _free_port(), _free_port()
    scenario = _scenario(replica_port, obs_port)
    spec_path = tmp_path / "remote-fault.json"
    save_spec(scenario, str(spec_path))

    env = dict(os.environ)
    env["PYTHONPATH"] = SRC + os.pathsep + env.get("PYTHONPATH", "")
    server = subprocess.Popen(
        [sys.executable, "-m", "repro", "serve",
         "--spec", str(spec_path), "--replicas", "r3"],
        stdout=subprocess.PIPE, stderr=subprocess.STDOUT,
        text=True, env=env)
    try:
        line = server.stdout.readline()
        assert "serving r3@" in line, f"serve did not come up: {line!r}"
        line = server.stdout.readline()
        assert f"r3@127.0.0.1:{obs_port}" in line, \
            f"obs endpoint not announced: {line!r}"

        # The serving side starts healthy and un-crashed.
        before = _healthz("127.0.0.1", obs_port)
        assert before["crashed"] is False

        runner = ScenarioRunner(
            backend="tcp", tcp_timeout_s=30.0,
            scrape_config=ScrapeConfig(interval_s=0.2, timeout_s=1.0))
        report = runner.run(scenario)

        # Both remote-targeted faults were dispatched and recorded.
        assert [e["event"] for e in report.fault_log] == \
            ["CrashReplica", "RecoverReplica"]
        assert report.network.get("control_errors") == 0
        assert report.delivered == 4

        # Ground truth on the serving side: the crash landed (and the
        # recover un-did it), all driven from the other process.
        after = _healthz("127.0.0.1", obs_port)
        assert after["crashed"] is False  # recovered by the schedule
        assert after["executed"] >= before["executed"]

        # The periodic sampler ran against the serving process: a
        # time series of /metrics.json pulls, each tick either stats
        # or None (the mid-run crash window may show the outage).
        samples = runner.last_scrape_samples
        assert samples, "periodic scraper collected nothing"
        assert all(set(s) == {"t_ms", "replicas"} for s in samples)
        assert all(list(s["replicas"]) == ["r3"] for s in samples)
        assert any(s["replicas"]["r3"] is not None for s in samples)
    finally:
        server.terminate()
        try:
            server.wait(timeout=10)
        except subprocess.TimeoutExpired:
            server.kill()
            server.wait()


def test_remote_crash_without_recover_sticks(tmp_path):
    replica_port, obs_port = _free_port(), _free_port()
    scenario = _scenario(replica_port, obs_port).with_overrides(
        faults=(CrashReplica(at_ms=250.0, replica="r3"),))
    spec_path = tmp_path / "remote-crash.json"
    save_spec(scenario, str(spec_path))

    env = dict(os.environ)
    env["PYTHONPATH"] = SRC + os.pathsep + env.get("PYTHONPATH", "")
    server = subprocess.Popen(
        [sys.executable, "-m", "repro", "serve",
         "--spec", str(spec_path), "--replicas", "r3"],
        stdout=subprocess.PIPE, stderr=subprocess.STDOUT,
        text=True, env=env)
    try:
        line = server.stdout.readline()
        assert "serving r3@" in line, f"serve did not come up: {line!r}"
        server.stdout.readline()  # obs endpoint banner

        report = ScenarioRunner(backend="tcp", tcp_timeout_s=30.0) \
            .run(scenario)
        assert report.network.get("control_errors") == 0

        after = _healthz("127.0.0.1", obs_port)
        assert after["crashed"] is True
        assert after["status"] == "degraded"
        assert any("crashed" in reason for reason in after["reasons"])
    finally:
        server.terminate()
        try:
            server.wait(timeout=10)
        except subprocess.TimeoutExpired:
            server.kill()
            server.wait()
